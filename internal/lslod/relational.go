package lslod

import (
	"fmt"
	"sort"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/lake"
)

// MaxIndexValueFraction is the paper's indexing rule: "No index is created
// since there are values that are present in more than 15% of the records."
const MaxIndexValueFraction = 0.15

// indexDenied is the rule's threshold decision, shared by the
// materialized-table path (ApplyIndexRule) and the pre-build spec path
// (finish) so the two can never disagree on the boundary.
func indexDenied(maxValueFraction float64) bool {
	return maxValueFraction > MaxIndexValueFraction
}

// ApplyIndexRule creates the requested index on a materialized table only
// when the column's most frequent value covers at most
// MaxIndexValueFraction of the rows. It reports whether the index was
// created.
func ApplyIndexRule(t *rdb.Table, column string, kind rdb.IndexKind) (bool, error) {
	if indexDenied(t.Stats().MaxValueFraction[column]) {
		return false, nil
	}
	if err := t.CreateIndex(rdb.IndexSpec{Column: column, Kind: kind}); err != nil {
		return false, err
	}
	return true, nil
}

// indexRequest is one desired secondary index, subject to the 15% rule.
type indexRequest struct {
	table  string
	column string
	kind   rdb.IndexKind
}

// datasetSpec is one dataset's relational declaration in public
// lake-builder terms: the generator produces specs, and the lake is
// assembled by handing them to lake.NewBuilder — the same path external
// library users take.
type datasetSpec struct {
	id       string
	tables   []lake.TableSpec
	mappings []lake.ClassMapping
}

// apply registers the dataset's tables and class mappings on the builder.
func (s *datasetSpec) apply(b *lake.Builder) {
	for _, t := range s.tables {
		b.AddTable(s.id, t)
	}
	for _, m := range s.mappings {
		b.MapClass(s.id, m)
	}
}

// specTable accumulates one table's declaration and rows.
type specTable struct {
	schema *rdb.Schema
	rows   []rdb.Row
	idx    []lake.Index
}

// relationalBuilder assembles one dataset's spec: tables, rows, mappings
// and rule-filtered index declarations.
type relationalBuilder struct {
	ds       string
	tables   []*specTable
	byName   map[string]*specTable
	mappings map[string]*catalog.ClassMapping
	requests []indexRequest
	// denied records columns denied by the 15% rule (for reports and
	// tests).
	denied []string
}

func newRelationalBuilder(ds string) *relationalBuilder {
	return &relationalBuilder{
		ds:       ds,
		byName:   map[string]*specTable{},
		mappings: map[string]*catalog.ClassMapping{},
	}
}

func (b *relationalBuilder) table(schema *rdb.Schema) *specTable {
	if _, dup := b.byName[schema.Name]; dup {
		panic(fmt.Sprintf("lslod: table %s declared twice in %s", schema.Name, b.ds))
	}
	t := &specTable{schema: schema}
	b.tables = append(b.tables, t)
	b.byName[schema.Name] = t
	return t
}

func (b *relationalBuilder) insert(t *specTable, rows ...rdb.Row) {
	t.rows = append(t.rows, rows...)
}

func (b *relationalBuilder) want(table, column string, kind rdb.IndexKind) {
	b.requests = append(b.requests, indexRequest{table, column, kind})
}

// maxValueFraction returns the frequency of the column's most common
// non-null value as a fraction of the row count — the same statistic rdb
// maintains, computed here because the rule runs before the tables are
// materialized.
func maxValueFraction(t *specTable, column string) float64 {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 || len(t.rows) == 0 {
		return 0
	}
	counts := map[string]int{}
	maxN := 0
	for _, r := range t.rows {
		if r[ci].Null {
			continue
		}
		key := r[ci].IndexKey()
		counts[key]++
		if n := counts[key]; n > maxN {
			maxN = n
		}
	}
	return float64(maxN) / float64(len(t.rows))
}

// finish applies the 15% rule to the index requests and emits the dataset
// spec plus the denied columns.
func (b *relationalBuilder) finish(ds string) (*datasetSpec, []string) {
	for _, req := range b.requests {
		t := b.byName[req.table]
		if t == nil {
			panic(fmt.Sprintf("lslod: index request on unknown table %s.%s", req.table, req.column))
		}
		if indexDenied(maxValueFraction(t, req.column)) {
			b.denied = append(b.denied, req.table+"."+req.column)
			continue
		}
		kind := lake.HashIndex
		if req.kind == rdb.IndexBTree {
			kind = lake.BTreeIndex
		}
		t.idx = append(t.idx, lake.Index{Column: req.column, Kind: kind})
	}
	spec := &datasetSpec{id: ds}
	for _, t := range b.tables {
		spec.tables = append(spec.tables, tableSpec(t))
	}
	classes := make([]string, 0, len(b.mappings))
	for c := range b.mappings {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		spec.mappings = append(spec.mappings, classMappingSpec(b.mappings[c]))
	}
	return spec, b.denied
}

// tableSpec converts an accumulated table into the public declaration.
func tableSpec(t *specTable) lake.TableSpec {
	spec := lake.TableSpec{
		Name:       t.schema.Name,
		PrimaryKey: t.schema.PrimaryKey,
		Indexes:    t.idx,
	}
	for _, c := range t.schema.Columns {
		var ct lake.ColumnType
		switch c.Type {
		case rdb.TypeInt:
			ct = lake.TypeInt
		case rdb.TypeFloat:
			ct = lake.TypeFloat
		case rdb.TypeBool:
			ct = lake.TypeBool
		default:
			ct = lake.TypeString
		}
		spec.Columns = append(spec.Columns, lake.Column{Name: c.Name, Type: ct, NotNull: c.NotNull})
	}
	for _, r := range t.rows {
		row := make([]any, len(r))
		for i, v := range r {
			switch {
			case v.Null:
				row[i] = nil
			case v.Type == rdb.TypeInt:
				row[i] = v.Int
			case v.Type == rdb.TypeFloat:
				row[i] = v.Float
			case v.Type == rdb.TypeBool:
				row[i] = v.Bool
			default:
				row[i] = v.Str
			}
		}
		spec.Rows = append(spec.Rows, row)
	}
	return spec
}

// classMappingSpec converts an internal mapping declaration into the
// public one.
func classMappingSpec(cm *catalog.ClassMapping) lake.ClassMapping {
	out := lake.ClassMapping{
		Class:           cm.Class,
		Table:           cm.Table,
		SubjectColumn:   cm.SubjectColumn,
		SubjectTemplate: cm.SubjectTemplate,
		Denormalized:    cm.Denormalized,
	}
	preds := make([]string, 0, len(cm.Properties))
	for p := range cm.Properties {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		pm := cm.Properties[p]
		out.Properties = append(out.Properties, lake.PropertyMapping{
			Predicate:      pm.Predicate,
			Column:         pm.Column,
			JoinTable:      pm.JoinTable,
			JoinFK:         pm.JoinFK,
			ValueColumn:    pm.ValueColumn,
			ObjectTemplate: pm.ObjectTemplate,
			ObjectClass:    pm.ObjectClass,
		})
	}
	return out
}

func intCol(name string) rdb.Column   { return rdb.Column{Name: name, Type: rdb.TypeInt} }
func strCol(name string) rdb.Column   { return rdb.Column{Name: name, Type: rdb.TypeString} }
func floatCol(name string) rdb.Column { return rdb.Column{Name: name, Type: rdb.TypeFloat} }
func pkCol(name string) rdb.Column    { return rdb.Column{Name: name, Type: rdb.TypeInt, NotNull: true} }
func direct(pred, col string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{Predicate: pred, Column: col}
}
func link(pred, col, tmpl, class string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{Predicate: pred, Column: col, ObjectTemplate: tmpl, ObjectClass: class}
}
func sideTable(pred, table, fk, val, tmpl, class string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{
		Predicate: pred, JoinTable: table, JoinFK: fk, ValueColumn: val,
		ObjectTemplate: tmpl, ObjectClass: class,
	}
}

// relationalSpecs declares the ten per-dataset relational databases with
// mappings and rule-filtered indexes in public lake-builder terms. It
// returns the specs by dataset ID and the list of index requests denied by
// the 15% rule.
func relationalSpecs(d *Data) (map[string]*datasetSpec, []string) {
	out := map[string]*datasetSpec{}
	var denied []string
	add := func(spec *datasetSpec, d []string) {
		out[spec.id] = spec
		denied = append(denied, d...)
	}
	add(buildDiseasome(d))
	add(buildAffymetrix(d))
	add(buildDrugBank(d))
	add(buildTCGA(d))
	add(buildKEGG(d))
	add(buildChEBI(d))
	add(buildSider(d))
	add(buildLinkedCT(d))
	add(buildMedicare(d))
	add(buildPharmGKB(d))
	return out, denied
}

func buildDiseasome(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSDiseasome)
	disease := b.table(&rdb.Schema{
		Name:       "disease",
		Columns:    []rdb.Column{pkCol("id"), strCol("name"), strCol("disease_class"), intCol("degree")},
		PrimaryKey: "id",
	})
	gene := b.table(&rdb.Schema{
		Name:       "gene",
		Columns:    []rdb.Column{pkCol("id"), strCol("label"), strCol("chromosome"), intCol("gene_length")},
		PrimaryKey: "id",
	})
	diseaseGene := b.table(&rdb.Schema{
		Name:       "disease_gene",
		Columns:    []rdb.Column{pkCol("id"), intCol("disease_id"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	diseaseDrug := b.table(&rdb.Schema{
		Name:       "disease_drug",
		Columns:    []rdb.Column{pkCol("id"), intCol("disease_id"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	linkID := 0
	for _, dis := range d.Diseases {
		b.insert(disease, rdb.Row{
			rdb.IntValue(int64(dis.ID)), rdb.StringValue(dis.Name),
			rdb.StringValue(dis.Class), rdb.IntValue(int64(dis.Degree)),
		})
		for _, g := range dis.Genes {
			linkID++
			b.insert(diseaseGene, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dis.ID)), rdb.IntValue(int64(g)),
			})
		}
	}
	linkID = 0
	for _, dis := range d.Diseases {
		for _, dr := range dis.Drugs {
			linkID++
			b.insert(diseaseDrug, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dis.ID)), rdb.IntValue(int64(dr)),
			})
		}
	}
	for _, g := range d.Genes {
		b.insert(gene, rdb.Row{
			rdb.IntValue(int64(g.ID)), rdb.StringValue(g.Label),
			rdb.StringValue(g.Chromosome), rdb.IntValue(int64(g.Length)),
		})
	}

	b.want("disease", "name", rdb.IndexHash)
	b.want("disease", "disease_class", rdb.IndexHash)
	b.want("disease", "degree", rdb.IndexBTree)
	b.want("disease_gene", "disease_id", rdb.IndexHash)
	b.want("disease_gene", "gene_id", rdb.IndexHash)
	b.want("disease_drug", "disease_id", rdb.IndexHash)
	b.want("disease_drug", "drug_id", rdb.IndexHash)
	b.want("gene", "chromosome", rdb.IndexHash)
	b.want("gene", "gene_length", rdb.IndexBTree)

	b.mappings[ClassDisease] = &catalog.ClassMapping{
		Class: ClassDisease, Table: "disease",
		SubjectColumn: "id", SubjectTemplate: TmplDisease,
		Properties: map[string]*catalog.PropertyMapping{
			PredDiseaseName:    direct(PredDiseaseName, "name"),
			PredDiseaseClass:   direct(PredDiseaseClass, "disease_class"),
			PredDegree:         direct(PredDegree, "degree"),
			PredAssociatedGene: sideTable(PredAssociatedGene, "disease_gene", "disease_id", "gene_id", TmplGene, ClassGene),
			PredPossibleDrug:   sideTable(PredPossibleDrug, "disease_drug", "disease_id", "drug_id", TmplDrug, ClassDrug),
		},
	}
	b.mappings[ClassGene] = &catalog.ClassMapping{
		Class: ClassGene, Table: "gene",
		SubjectColumn: "id", SubjectTemplate: TmplGene,
		Properties: map[string]*catalog.PropertyMapping{
			PredGeneLabel:      direct(PredGeneLabel, "label"),
			PredGeneChromosome: direct(PredGeneChromosome, "chromosome"),
			PredGeneLength:     direct(PredGeneLength, "gene_length"),
		},
	}
	return b.finish(DSDiseasome)
}

func buildAffymetrix(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSAffymetrix)
	probeset := b.table(&rdb.Schema{
		Name: "probeset",
		Columns: []rdb.Column{
			pkCol("id"), strCol("name"), strCol("species"),
			strCol("chromosome"), floatCol("signal_avg"), intCol("gene_id"),
		},
		PrimaryKey: "id",
	})
	for _, p := range d.Probesets {
		b.insert(probeset, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Name), rdb.StringValue(p.Species),
			rdb.StringValue(p.Chromosome), rdb.FloatValue(p.Signal), rdb.IntValue(int64(p.GeneID)),
		})
	}
	b.want("probeset", "gene_id", rdb.IndexHash)
	b.want("probeset", "chromosome", rdb.IndexHash)
	b.want("probeset", "signal_avg", rdb.IndexBTree)
	// Denied by the 15% rule: most records are Homo sapiens (the paper's
	// motivating example).
	b.want("probeset", "species", rdb.IndexHash)

	b.mappings[ClassProbeset] = &catalog.ClassMapping{
		Class: ClassProbeset, Table: "probeset",
		SubjectColumn: "id", SubjectTemplate: TmplProbeset,
		Properties: map[string]*catalog.PropertyMapping{
			PredProbesetName:    direct(PredProbesetName, "name"),
			PredSpecies:         direct(PredSpecies, "species"),
			PredProbeChromosome: direct(PredProbeChromosome, "chromosome"),
			PredSignal:          direct(PredSignal, "signal_avg"),
			PredTranscribedFrom: link(PredTranscribedFrom, "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSAffymetrix)
}

func buildDrugBank(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSDrugBank)
	drug := b.table(&rdb.Schema{
		Name: "drug",
		Columns: []rdb.Column{
			pkCol("id"), strCol("generic_name"), strCol("indication"),
			strCol("category"), floatCol("mol_weight"),
		},
		PrimaryKey: "id",
	})
	target := b.table(&rdb.Schema{
		Name:       "target",
		Columns:    []rdb.Column{pkCol("id"), strCol("target_name"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	drugTarget := b.table(&rdb.Schema{
		Name:       "drug_target",
		Columns:    []rdb.Column{pkCol("id"), intCol("drug_id"), intCol("target_id")},
		PrimaryKey: "id",
	})
	for _, dr := range d.Drugs {
		b.insert(drug, rdb.Row{
			rdb.IntValue(int64(dr.ID)), rdb.StringValue(dr.GenericName),
			rdb.StringValue(dr.Indication), rdb.StringValue(dr.Category), rdb.FloatValue(dr.Weight),
		})
	}
	for _, t := range d.Targets {
		b.insert(target, rdb.Row{
			rdb.IntValue(int64(t.ID)), rdb.StringValue(t.Name), rdb.IntValue(int64(t.GeneID)),
		})
	}
	linkID := 0
	for _, dr := range d.Drugs {
		for _, tg := range dr.Targets {
			linkID++
			b.insert(drugTarget, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dr.ID)), rdb.IntValue(int64(tg)),
			})
		}
	}
	b.want("drug", "category", rdb.IndexHash)
	b.want("drug", "mol_weight", rdb.IndexBTree)
	b.want("drug_target", "drug_id", rdb.IndexHash)
	b.want("drug_target", "target_id", rdb.IndexHash)
	b.want("target", "gene_id", rdb.IndexHash)

	b.mappings[ClassDrug] = &catalog.ClassMapping{
		Class: ClassDrug, Table: "drug",
		SubjectColumn: "id", SubjectTemplate: TmplDrug,
		Properties: map[string]*catalog.PropertyMapping{
			PredGenericName:  direct(PredGenericName, "generic_name"),
			PredIndication:   direct(PredIndication, "indication"),
			PredDrugCategory: direct(PredDrugCategory, "category"),
			PredMolWeight:    direct(PredMolWeight, "mol_weight"),
			PredTarget:       sideTable(PredTarget, "drug_target", "drug_id", "target_id", TmplTarget, ClassTarget),
		},
	}
	b.mappings[ClassTarget] = &catalog.ClassMapping{
		Class: ClassTarget, Table: "target",
		SubjectColumn: "id", SubjectTemplate: TmplTarget,
		Properties: map[string]*catalog.PropertyMapping{
			PredTargetName: direct(PredTargetName, "target_name"),
			PredTargetGene: link(PredTargetGene, "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSDrugBank)
}

func buildTCGA(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSTCGA)
	patient := b.table(&rdb.Schema{
		Name: "patient",
		Columns: []rdb.Column{
			pkCol("id"), strCol("gender"), intCol("age"), strCol("tumor_site"),
		},
		PrimaryKey: "id",
	})
	patientGene := b.table(&rdb.Schema{
		Name:       "patient_gene",
		Columns:    []rdb.Column{pkCol("id"), intCol("patient_id"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	for _, p := range d.Patients {
		b.insert(patient, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Gender),
			rdb.IntValue(int64(p.Age)), rdb.StringValue(p.TumorSite),
		})
	}
	linkID := 0
	for _, p := range d.Patients {
		for _, g := range p.Genes {
			linkID++
			b.insert(patientGene, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(p.ID)), rdb.IntValue(int64(g)),
			})
		}
	}
	b.want("patient", "tumor_site", rdb.IndexHash)
	b.want("patient", "age", rdb.IndexBTree)
	// Denied: only two gender values.
	b.want("patient", "gender", rdb.IndexHash)
	b.want("patient_gene", "patient_id", rdb.IndexHash)
	b.want("patient_gene", "gene_id", rdb.IndexHash)

	b.mappings[ClassPatient] = &catalog.ClassMapping{
		Class: ClassPatient, Table: "patient",
		SubjectColumn: "id", SubjectTemplate: TmplPatient,
		Properties: map[string]*catalog.PropertyMapping{
			PredGender:      direct(PredGender, "gender"),
			PredAge:         direct(PredAge, "age"),
			PredTumorSite:   direct(PredTumorSite, "tumor_site"),
			PredMutatedGene: sideTable(PredMutatedGene, "patient_gene", "patient_id", "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSTCGA)
}

func buildKEGG(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSKEGG)
	compound := b.table(&rdb.Schema{
		Name:       "compound",
		Columns:    []rdb.Column{pkCol("id"), strCol("formula"), strCol("pathway"), floatCol("mass")},
		PrimaryKey: "id",
	})
	for _, c := range d.Compounds {
		b.insert(compound, rdb.Row{
			rdb.IntValue(int64(c.ID)), rdb.StringValue(c.Formula),
			rdb.StringValue(c.Pathway), rdb.FloatValue(c.Mass),
		})
	}
	b.want("compound", "pathway", rdb.IndexHash)
	b.want("compound", "mass", rdb.IndexBTree)

	b.mappings[ClassCompound] = &catalog.ClassMapping{
		Class: ClassCompound, Table: "compound",
		SubjectColumn: "id", SubjectTemplate: TmplCompound,
		Properties: map[string]*catalog.PropertyMapping{
			PredFormula: direct(PredFormula, "formula"),
			PredPathway: direct(PredPathway, "pathway"),
			PredMass:    direct(PredMass, "mass"),
		},
	}
	return b.finish(DSKEGG)
}

func buildChEBI(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSChEBI)
	ent := b.table(&rdb.Schema{
		Name:       "chem_entity",
		Columns:    []rdb.Column{pkCol("id"), strCol("name"), intCol("charge"), floatCol("mass")},
		PrimaryKey: "id",
	})
	for _, c := range d.ChemEntities {
		b.insert(ent, rdb.Row{
			rdb.IntValue(int64(c.ID)), rdb.StringValue(c.Name),
			rdb.IntValue(int64(c.Charge)), rdb.FloatValue(c.Mass),
		})
	}
	b.want("chem_entity", "mass", rdb.IndexBTree)
	// Denied: 7 distinct charges, most frequent above 15%.
	b.want("chem_entity", "charge", rdb.IndexHash)

	b.mappings[ClassChemEntity] = &catalog.ClassMapping{
		Class: ClassChemEntity, Table: "chem_entity",
		SubjectColumn: "id", SubjectTemplate: TmplChemEntity,
		Properties: map[string]*catalog.PropertyMapping{
			PredChebiName: direct(PredChebiName, "name"),
			PredCharge:    direct(PredCharge, "charge"),
			PredChebiMass: direct(PredChebiMass, "mass"),
		},
	}
	return b.finish(DSChEBI)
}

func buildSider(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSSider)
	eff := b.table(&rdb.Schema{
		Name:       "side_effect",
		Columns:    []rdb.Column{pkCol("id"), strCol("effect_name"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	for _, e := range d.Effects {
		b.insert(eff, rdb.Row{
			rdb.IntValue(int64(e.ID)), rdb.StringValue(e.Name), rdb.IntValue(int64(e.DrugID)),
		})
	}
	b.want("side_effect", "effect_name", rdb.IndexHash)
	b.want("side_effect", "drug_id", rdb.IndexHash)

	b.mappings[ClassSideEffect] = &catalog.ClassMapping{
		Class: ClassSideEffect, Table: "side_effect",
		SubjectColumn: "id", SubjectTemplate: TmplSideEffect,
		Properties: map[string]*catalog.PropertyMapping{
			PredEffectName: direct(PredEffectName, "effect_name"),
			PredCausedBy:   link(PredCausedBy, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSSider)
}

func buildLinkedCT(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSLinkedCT)
	trial := b.table(&rdb.Schema{
		Name: "trial",
		Columns: []rdb.Column{
			pkCol("id"), strCol("title"), strCol("phase"),
			strCol("overall_status"), intCol("disease_id"), intCol("drug_id"),
		},
		PrimaryKey: "id",
	})
	for _, t := range d.Trials {
		b.insert(trial, rdb.Row{
			rdb.IntValue(int64(t.ID)), rdb.StringValue(t.Title), rdb.StringValue(t.Phase),
			rdb.StringValue(t.Status), rdb.IntValue(int64(t.DiseaseID)), rdb.IntValue(int64(t.DrugID)),
		})
	}
	b.want("trial", "overall_status", rdb.IndexHash)
	b.want("trial", "disease_id", rdb.IndexHash)
	b.want("trial", "drug_id", rdb.IndexHash)
	// Denied: four phases, each around 25% of the records.
	b.want("trial", "phase", rdb.IndexHash)

	b.mappings[ClassTrial] = &catalog.ClassMapping{
		Class: ClassTrial, Table: "trial",
		SubjectColumn: "id", SubjectTemplate: TmplTrial,
		Properties: map[string]*catalog.PropertyMapping{
			PredTrialTitle:   direct(PredTrialTitle, "title"),
			PredPhase:        direct(PredPhase, "phase"),
			PredStatus:       direct(PredStatus, "overall_status"),
			PredCondition:    link(PredCondition, "disease_id", TmplDisease, ClassDisease),
			PredIntervention: link(PredIntervention, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSLinkedCT)
}

func buildMedicare(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSMedicare)
	prov := b.table(&rdb.Schema{
		Name:       "provider",
		Columns:    []rdb.Column{pkCol("id"), strCol("provider_name"), strCol("state"), strCol("specialty")},
		PrimaryKey: "id",
	})
	provDrug := b.table(&rdb.Schema{
		Name:       "provider_drug",
		Columns:    []rdb.Column{pkCol("id"), intCol("provider_id"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	for _, p := range d.Providers {
		b.insert(prov, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Name),
			rdb.StringValue(p.State), rdb.StringValue(p.Specialty),
		})
	}
	linkID := 0
	for _, p := range d.Providers {
		for _, dr := range p.Drugs {
			linkID++
			b.insert(provDrug, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(p.ID)), rdb.IntValue(int64(dr)),
			})
		}
	}
	b.want("provider", "state", rdb.IndexHash)
	b.want("provider", "specialty", rdb.IndexHash)
	b.want("provider_drug", "provider_id", rdb.IndexHash)
	b.want("provider_drug", "drug_id", rdb.IndexHash)

	b.mappings[ClassProvider] = &catalog.ClassMapping{
		Class: ClassProvider, Table: "provider",
		SubjectColumn: "id", SubjectTemplate: TmplProvider,
		Properties: map[string]*catalog.PropertyMapping{
			PredProviderName: direct(PredProviderName, "provider_name"),
			PredState:        direct(PredState, "state"),
			PredSpecialty:    direct(PredSpecialty, "specialty"),
			PredPrescribes:   sideTable(PredPrescribes, "provider_drug", "provider_id", "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSMedicare)
}

func buildPharmGKB(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSPharmGKB)
	assoc := b.table(&rdb.Schema{
		Name: "association",
		Columns: []rdb.Column{
			pkCol("id"), strCol("evidence"), floatCol("score"),
			intCol("gene_id"), intCol("drug_id"),
		},
		PrimaryKey: "id",
	})
	for _, a := range d.Associations {
		b.insert(assoc, rdb.Row{
			rdb.IntValue(int64(a.ID)), rdb.StringValue(a.Evidence), rdb.FloatValue(a.Score),
			rdb.IntValue(int64(a.GeneID)), rdb.IntValue(int64(a.DrugID)),
		})
	}
	b.want("association", "evidence", rdb.IndexHash)
	b.want("association", "score", rdb.IndexBTree)
	b.want("association", "gene_id", rdb.IndexHash)
	b.want("association", "drug_id", rdb.IndexHash)

	b.mappings[ClassAssociation] = &catalog.ClassMapping{
		Class: ClassAssociation, Table: "association",
		SubjectColumn: "id", SubjectTemplate: TmplAssociation,
		Properties: map[string]*catalog.PropertyMapping{
			PredEvidence: direct(PredEvidence, "evidence"),
			PredScore:    direct(PredScore, "score"),
			PredPAGene:   link(PredPAGene, "gene_id", TmplGene, ClassGene),
			PredPADrug:   link(PredPADrug, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSPharmGKB)
}
