package lslod

import (
	"fmt"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
)

// MaxIndexValueFraction is the paper's indexing rule: "No index is created
// since there are values that are present in more than 15% of the records."
const MaxIndexValueFraction = 0.15

// ApplyIndexRule creates the requested index only when the column's most
// frequent value covers at most MaxIndexValueFraction of the rows. It
// reports whether the index was created.
func ApplyIndexRule(t *rdb.Table, column string, kind rdb.IndexKind) (bool, error) {
	st := t.Stats()
	if st.MaxValueFraction[column] > MaxIndexValueFraction {
		return false, nil
	}
	if err := t.CreateIndex(rdb.IndexSpec{Column: column, Kind: kind}); err != nil {
		return false, err
	}
	return true, nil
}

// indexRequest is one desired secondary index, subject to the 15% rule.
type indexRequest struct {
	table  string
	column string
	kind   rdb.IndexKind
}

// relationalBuilder assembles one dataset's database, mappings and indexes.
type relationalBuilder struct {
	db       *rdb.Database
	mappings map[string]*catalog.ClassMapping
	requests []indexRequest
	// DeniedIndexes records columns denied by the 15% rule (for reports
	// and tests).
	denied []string
}

func newRelationalBuilder(ds string) *relationalBuilder {
	return &relationalBuilder{
		db:       rdb.NewDatabase(ds),
		mappings: map[string]*catalog.ClassMapping{},
	}
}

func (b *relationalBuilder) table(schema *rdb.Schema) *rdb.Table {
	t, err := b.db.CreateTable(schema)
	if err != nil {
		panic(fmt.Sprintf("lslod: %v", err))
	}
	return t
}

func (b *relationalBuilder) insert(t *rdb.Table, rows ...rdb.Row) {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			panic(fmt.Sprintf("lslod: %v", err))
		}
	}
}

func (b *relationalBuilder) want(table, column string, kind rdb.IndexKind) {
	b.requests = append(b.requests, indexRequest{table, column, kind})
}

func (b *relationalBuilder) finish(ds string) (*catalog.Source, []string) {
	for _, req := range b.requests {
		t := b.db.Table(req.table)
		created, err := ApplyIndexRule(t, req.column, req.kind)
		if err != nil {
			panic(fmt.Sprintf("lslod: %v", err))
		}
		if !created {
			b.denied = append(b.denied, req.table+"."+req.column)
		}
	}
	return &catalog.Source{
		ID:       ds,
		Model:    catalog.ModelRelational,
		DB:       b.db,
		Mappings: b.mappings,
	}, b.denied
}

func intCol(name string) rdb.Column   { return rdb.Column{Name: name, Type: rdb.TypeInt} }
func strCol(name string) rdb.Column   { return rdb.Column{Name: name, Type: rdb.TypeString} }
func floatCol(name string) rdb.Column { return rdb.Column{Name: name, Type: rdb.TypeFloat} }
func pkCol(name string) rdb.Column    { return rdb.Column{Name: name, Type: rdb.TypeInt, NotNull: true} }
func direct(pred, col string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{Predicate: pred, Column: col}
}
func link(pred, col, tmpl, class string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{Predicate: pred, Column: col, ObjectTemplate: tmpl, ObjectClass: class}
}
func sideTable(pred, table, fk, val, tmpl, class string) *catalog.PropertyMapping {
	return &catalog.PropertyMapping{
		Predicate: pred, JoinTable: table, JoinFK: fk, ValueColumn: val,
		ObjectTemplate: tmpl, ObjectClass: class,
	}
}

// BuildRelationalSources builds the ten per-dataset relational databases
// with mappings and rule-filtered indexes. It returns the sources by
// dataset ID and the list of index requests denied by the 15% rule.
func BuildRelationalSources(d *Data) (map[string]*catalog.Source, []string) {
	out := map[string]*catalog.Source{}
	var denied []string
	add := func(src *catalog.Source, d []string) {
		out[src.ID] = src
		denied = append(denied, d...)
	}
	add(buildDiseasome(d))
	add(buildAffymetrix(d))
	add(buildDrugBank(d))
	add(buildTCGA(d))
	add(buildKEGG(d))
	add(buildChEBI(d))
	add(buildSider(d))
	add(buildLinkedCT(d))
	add(buildMedicare(d))
	add(buildPharmGKB(d))
	return out, denied
}

func buildDiseasome(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSDiseasome)
	disease := b.table(&rdb.Schema{
		Name:       "disease",
		Columns:    []rdb.Column{pkCol("id"), strCol("name"), strCol("disease_class"), intCol("degree")},
		PrimaryKey: "id",
	})
	gene := b.table(&rdb.Schema{
		Name:       "gene",
		Columns:    []rdb.Column{pkCol("id"), strCol("label"), strCol("chromosome"), intCol("gene_length")},
		PrimaryKey: "id",
	})
	diseaseGene := b.table(&rdb.Schema{
		Name:       "disease_gene",
		Columns:    []rdb.Column{pkCol("id"), intCol("disease_id"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	diseaseDrug := b.table(&rdb.Schema{
		Name:       "disease_drug",
		Columns:    []rdb.Column{pkCol("id"), intCol("disease_id"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	linkID := 0
	for _, dis := range d.Diseases {
		b.insert(disease, rdb.Row{
			rdb.IntValue(int64(dis.ID)), rdb.StringValue(dis.Name),
			rdb.StringValue(dis.Class), rdb.IntValue(int64(dis.Degree)),
		})
		for _, g := range dis.Genes {
			linkID++
			b.insert(diseaseGene, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dis.ID)), rdb.IntValue(int64(g)),
			})
		}
	}
	linkID = 0
	for _, dis := range d.Diseases {
		for _, dr := range dis.Drugs {
			linkID++
			b.insert(diseaseDrug, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dis.ID)), rdb.IntValue(int64(dr)),
			})
		}
	}
	for _, g := range d.Genes {
		b.insert(gene, rdb.Row{
			rdb.IntValue(int64(g.ID)), rdb.StringValue(g.Label),
			rdb.StringValue(g.Chromosome), rdb.IntValue(int64(g.Length)),
		})
	}

	b.want("disease", "name", rdb.IndexHash)
	b.want("disease", "disease_class", rdb.IndexHash)
	b.want("disease", "degree", rdb.IndexBTree)
	b.want("disease_gene", "disease_id", rdb.IndexHash)
	b.want("disease_gene", "gene_id", rdb.IndexHash)
	b.want("disease_drug", "disease_id", rdb.IndexHash)
	b.want("disease_drug", "drug_id", rdb.IndexHash)
	b.want("gene", "chromosome", rdb.IndexHash)
	b.want("gene", "gene_length", rdb.IndexBTree)

	b.mappings[ClassDisease] = &catalog.ClassMapping{
		Class: ClassDisease, Table: "disease",
		SubjectColumn: "id", SubjectTemplate: TmplDisease,
		Properties: map[string]*catalog.PropertyMapping{
			PredDiseaseName:    direct(PredDiseaseName, "name"),
			PredDiseaseClass:   direct(PredDiseaseClass, "disease_class"),
			PredDegree:         direct(PredDegree, "degree"),
			PredAssociatedGene: sideTable(PredAssociatedGene, "disease_gene", "disease_id", "gene_id", TmplGene, ClassGene),
			PredPossibleDrug:   sideTable(PredPossibleDrug, "disease_drug", "disease_id", "drug_id", TmplDrug, ClassDrug),
		},
	}
	b.mappings[ClassGene] = &catalog.ClassMapping{
		Class: ClassGene, Table: "gene",
		SubjectColumn: "id", SubjectTemplate: TmplGene,
		Properties: map[string]*catalog.PropertyMapping{
			PredGeneLabel:      direct(PredGeneLabel, "label"),
			PredGeneChromosome: direct(PredGeneChromosome, "chromosome"),
			PredGeneLength:     direct(PredGeneLength, "gene_length"),
		},
	}
	return b.finish(DSDiseasome)
}

func buildAffymetrix(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSAffymetrix)
	probeset := b.table(&rdb.Schema{
		Name: "probeset",
		Columns: []rdb.Column{
			pkCol("id"), strCol("name"), strCol("species"),
			strCol("chromosome"), floatCol("signal_avg"), intCol("gene_id"),
		},
		PrimaryKey: "id",
	})
	for _, p := range d.Probesets {
		b.insert(probeset, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Name), rdb.StringValue(p.Species),
			rdb.StringValue(p.Chromosome), rdb.FloatValue(p.Signal), rdb.IntValue(int64(p.GeneID)),
		})
	}
	b.want("probeset", "gene_id", rdb.IndexHash)
	b.want("probeset", "chromosome", rdb.IndexHash)
	b.want("probeset", "signal_avg", rdb.IndexBTree)
	// Denied by the 15% rule: most records are Homo sapiens (the paper's
	// motivating example).
	b.want("probeset", "species", rdb.IndexHash)

	b.mappings[ClassProbeset] = &catalog.ClassMapping{
		Class: ClassProbeset, Table: "probeset",
		SubjectColumn: "id", SubjectTemplate: TmplProbeset,
		Properties: map[string]*catalog.PropertyMapping{
			PredProbesetName:    direct(PredProbesetName, "name"),
			PredSpecies:         direct(PredSpecies, "species"),
			PredProbeChromosome: direct(PredProbeChromosome, "chromosome"),
			PredSignal:          direct(PredSignal, "signal_avg"),
			PredTranscribedFrom: link(PredTranscribedFrom, "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSAffymetrix)
}

func buildDrugBank(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSDrugBank)
	drug := b.table(&rdb.Schema{
		Name: "drug",
		Columns: []rdb.Column{
			pkCol("id"), strCol("generic_name"), strCol("indication"),
			strCol("category"), floatCol("mol_weight"),
		},
		PrimaryKey: "id",
	})
	target := b.table(&rdb.Schema{
		Name:       "target",
		Columns:    []rdb.Column{pkCol("id"), strCol("target_name"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	drugTarget := b.table(&rdb.Schema{
		Name:       "drug_target",
		Columns:    []rdb.Column{pkCol("id"), intCol("drug_id"), intCol("target_id")},
		PrimaryKey: "id",
	})
	for _, dr := range d.Drugs {
		b.insert(drug, rdb.Row{
			rdb.IntValue(int64(dr.ID)), rdb.StringValue(dr.GenericName),
			rdb.StringValue(dr.Indication), rdb.StringValue(dr.Category), rdb.FloatValue(dr.Weight),
		})
	}
	for _, t := range d.Targets {
		b.insert(target, rdb.Row{
			rdb.IntValue(int64(t.ID)), rdb.StringValue(t.Name), rdb.IntValue(int64(t.GeneID)),
		})
	}
	linkID := 0
	for _, dr := range d.Drugs {
		for _, tg := range dr.Targets {
			linkID++
			b.insert(drugTarget, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(dr.ID)), rdb.IntValue(int64(tg)),
			})
		}
	}
	b.want("drug", "category", rdb.IndexHash)
	b.want("drug", "mol_weight", rdb.IndexBTree)
	b.want("drug_target", "drug_id", rdb.IndexHash)
	b.want("drug_target", "target_id", rdb.IndexHash)
	b.want("target", "gene_id", rdb.IndexHash)

	b.mappings[ClassDrug] = &catalog.ClassMapping{
		Class: ClassDrug, Table: "drug",
		SubjectColumn: "id", SubjectTemplate: TmplDrug,
		Properties: map[string]*catalog.PropertyMapping{
			PredGenericName:  direct(PredGenericName, "generic_name"),
			PredIndication:   direct(PredIndication, "indication"),
			PredDrugCategory: direct(PredDrugCategory, "category"),
			PredMolWeight:    direct(PredMolWeight, "mol_weight"),
			PredTarget:       sideTable(PredTarget, "drug_target", "drug_id", "target_id", TmplTarget, ClassTarget),
		},
	}
	b.mappings[ClassTarget] = &catalog.ClassMapping{
		Class: ClassTarget, Table: "target",
		SubjectColumn: "id", SubjectTemplate: TmplTarget,
		Properties: map[string]*catalog.PropertyMapping{
			PredTargetName: direct(PredTargetName, "target_name"),
			PredTargetGene: link(PredTargetGene, "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSDrugBank)
}

func buildTCGA(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSTCGA)
	patient := b.table(&rdb.Schema{
		Name: "patient",
		Columns: []rdb.Column{
			pkCol("id"), strCol("gender"), intCol("age"), strCol("tumor_site"),
		},
		PrimaryKey: "id",
	})
	patientGene := b.table(&rdb.Schema{
		Name:       "patient_gene",
		Columns:    []rdb.Column{pkCol("id"), intCol("patient_id"), intCol("gene_id")},
		PrimaryKey: "id",
	})
	for _, p := range d.Patients {
		b.insert(patient, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Gender),
			rdb.IntValue(int64(p.Age)), rdb.StringValue(p.TumorSite),
		})
	}
	linkID := 0
	for _, p := range d.Patients {
		for _, g := range p.Genes {
			linkID++
			b.insert(patientGene, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(p.ID)), rdb.IntValue(int64(g)),
			})
		}
	}
	b.want("patient", "tumor_site", rdb.IndexHash)
	b.want("patient", "age", rdb.IndexBTree)
	// Denied: only two gender values.
	b.want("patient", "gender", rdb.IndexHash)
	b.want("patient_gene", "patient_id", rdb.IndexHash)
	b.want("patient_gene", "gene_id", rdb.IndexHash)

	b.mappings[ClassPatient] = &catalog.ClassMapping{
		Class: ClassPatient, Table: "patient",
		SubjectColumn: "id", SubjectTemplate: TmplPatient,
		Properties: map[string]*catalog.PropertyMapping{
			PredGender:      direct(PredGender, "gender"),
			PredAge:         direct(PredAge, "age"),
			PredTumorSite:   direct(PredTumorSite, "tumor_site"),
			PredMutatedGene: sideTable(PredMutatedGene, "patient_gene", "patient_id", "gene_id", TmplGene, ClassGene),
		},
	}
	return b.finish(DSTCGA)
}

func buildKEGG(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSKEGG)
	compound := b.table(&rdb.Schema{
		Name:       "compound",
		Columns:    []rdb.Column{pkCol("id"), strCol("formula"), strCol("pathway"), floatCol("mass")},
		PrimaryKey: "id",
	})
	for _, c := range d.Compounds {
		b.insert(compound, rdb.Row{
			rdb.IntValue(int64(c.ID)), rdb.StringValue(c.Formula),
			rdb.StringValue(c.Pathway), rdb.FloatValue(c.Mass),
		})
	}
	b.want("compound", "pathway", rdb.IndexHash)
	b.want("compound", "mass", rdb.IndexBTree)

	b.mappings[ClassCompound] = &catalog.ClassMapping{
		Class: ClassCompound, Table: "compound",
		SubjectColumn: "id", SubjectTemplate: TmplCompound,
		Properties: map[string]*catalog.PropertyMapping{
			PredFormula: direct(PredFormula, "formula"),
			PredPathway: direct(PredPathway, "pathway"),
			PredMass:    direct(PredMass, "mass"),
		},
	}
	return b.finish(DSKEGG)
}

func buildChEBI(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSChEBI)
	ent := b.table(&rdb.Schema{
		Name:       "chem_entity",
		Columns:    []rdb.Column{pkCol("id"), strCol("name"), intCol("charge"), floatCol("mass")},
		PrimaryKey: "id",
	})
	for _, c := range d.ChemEntities {
		b.insert(ent, rdb.Row{
			rdb.IntValue(int64(c.ID)), rdb.StringValue(c.Name),
			rdb.IntValue(int64(c.Charge)), rdb.FloatValue(c.Mass),
		})
	}
	b.want("chem_entity", "mass", rdb.IndexBTree)
	// Denied: 7 distinct charges, most frequent above 15%.
	b.want("chem_entity", "charge", rdb.IndexHash)

	b.mappings[ClassChemEntity] = &catalog.ClassMapping{
		Class: ClassChemEntity, Table: "chem_entity",
		SubjectColumn: "id", SubjectTemplate: TmplChemEntity,
		Properties: map[string]*catalog.PropertyMapping{
			PredChebiName: direct(PredChebiName, "name"),
			PredCharge:    direct(PredCharge, "charge"),
			PredChebiMass: direct(PredChebiMass, "mass"),
		},
	}
	return b.finish(DSChEBI)
}

func buildSider(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSSider)
	eff := b.table(&rdb.Schema{
		Name:       "side_effect",
		Columns:    []rdb.Column{pkCol("id"), strCol("effect_name"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	for _, e := range d.Effects {
		b.insert(eff, rdb.Row{
			rdb.IntValue(int64(e.ID)), rdb.StringValue(e.Name), rdb.IntValue(int64(e.DrugID)),
		})
	}
	b.want("side_effect", "effect_name", rdb.IndexHash)
	b.want("side_effect", "drug_id", rdb.IndexHash)

	b.mappings[ClassSideEffect] = &catalog.ClassMapping{
		Class: ClassSideEffect, Table: "side_effect",
		SubjectColumn: "id", SubjectTemplate: TmplSideEffect,
		Properties: map[string]*catalog.PropertyMapping{
			PredEffectName: direct(PredEffectName, "effect_name"),
			PredCausedBy:   link(PredCausedBy, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSSider)
}

func buildLinkedCT(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSLinkedCT)
	trial := b.table(&rdb.Schema{
		Name: "trial",
		Columns: []rdb.Column{
			pkCol("id"), strCol("title"), strCol("phase"),
			strCol("overall_status"), intCol("disease_id"), intCol("drug_id"),
		},
		PrimaryKey: "id",
	})
	for _, t := range d.Trials {
		b.insert(trial, rdb.Row{
			rdb.IntValue(int64(t.ID)), rdb.StringValue(t.Title), rdb.StringValue(t.Phase),
			rdb.StringValue(t.Status), rdb.IntValue(int64(t.DiseaseID)), rdb.IntValue(int64(t.DrugID)),
		})
	}
	b.want("trial", "overall_status", rdb.IndexHash)
	b.want("trial", "disease_id", rdb.IndexHash)
	b.want("trial", "drug_id", rdb.IndexHash)
	// Denied: four phases, each around 25% of the records.
	b.want("trial", "phase", rdb.IndexHash)

	b.mappings[ClassTrial] = &catalog.ClassMapping{
		Class: ClassTrial, Table: "trial",
		SubjectColumn: "id", SubjectTemplate: TmplTrial,
		Properties: map[string]*catalog.PropertyMapping{
			PredTrialTitle:   direct(PredTrialTitle, "title"),
			PredPhase:        direct(PredPhase, "phase"),
			PredStatus:       direct(PredStatus, "overall_status"),
			PredCondition:    link(PredCondition, "disease_id", TmplDisease, ClassDisease),
			PredIntervention: link(PredIntervention, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSLinkedCT)
}

func buildMedicare(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSMedicare)
	prov := b.table(&rdb.Schema{
		Name:       "provider",
		Columns:    []rdb.Column{pkCol("id"), strCol("provider_name"), strCol("state"), strCol("specialty")},
		PrimaryKey: "id",
	})
	provDrug := b.table(&rdb.Schema{
		Name:       "provider_drug",
		Columns:    []rdb.Column{pkCol("id"), intCol("provider_id"), intCol("drug_id")},
		PrimaryKey: "id",
	})
	for _, p := range d.Providers {
		b.insert(prov, rdb.Row{
			rdb.IntValue(int64(p.ID)), rdb.StringValue(p.Name),
			rdb.StringValue(p.State), rdb.StringValue(p.Specialty),
		})
	}
	linkID := 0
	for _, p := range d.Providers {
		for _, dr := range p.Drugs {
			linkID++
			b.insert(provDrug, rdb.Row{
				rdb.IntValue(int64(linkID)), rdb.IntValue(int64(p.ID)), rdb.IntValue(int64(dr)),
			})
		}
	}
	b.want("provider", "state", rdb.IndexHash)
	b.want("provider", "specialty", rdb.IndexHash)
	b.want("provider_drug", "provider_id", rdb.IndexHash)
	b.want("provider_drug", "drug_id", rdb.IndexHash)

	b.mappings[ClassProvider] = &catalog.ClassMapping{
		Class: ClassProvider, Table: "provider",
		SubjectColumn: "id", SubjectTemplate: TmplProvider,
		Properties: map[string]*catalog.PropertyMapping{
			PredProviderName: direct(PredProviderName, "provider_name"),
			PredState:        direct(PredState, "state"),
			PredSpecialty:    direct(PredSpecialty, "specialty"),
			PredPrescribes:   sideTable(PredPrescribes, "provider_drug", "provider_id", "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSMedicare)
}

func buildPharmGKB(d *Data) (*catalog.Source, []string) {
	b := newRelationalBuilder(DSPharmGKB)
	assoc := b.table(&rdb.Schema{
		Name: "association",
		Columns: []rdb.Column{
			pkCol("id"), strCol("evidence"), floatCol("score"),
			intCol("gene_id"), intCol("drug_id"),
		},
		PrimaryKey: "id",
	})
	for _, a := range d.Associations {
		b.insert(assoc, rdb.Row{
			rdb.IntValue(int64(a.ID)), rdb.StringValue(a.Evidence), rdb.FloatValue(a.Score),
			rdb.IntValue(int64(a.GeneID)), rdb.IntValue(int64(a.DrugID)),
		})
	}
	b.want("association", "evidence", rdb.IndexHash)
	b.want("association", "score", rdb.IndexBTree)
	b.want("association", "gene_id", rdb.IndexHash)
	b.want("association", "drug_id", rdb.IndexHash)

	b.mappings[ClassAssociation] = &catalog.ClassMapping{
		Class: ClassAssociation, Table: "association",
		SubjectColumn: "id", SubjectTemplate: TmplAssociation,
		Properties: map[string]*catalog.PropertyMapping{
			PredEvidence: direct(PredEvidence, "evidence"),
			PredScore:    direct(PredScore, "score"),
			PredPAGene:   link(PredPAGene, "gene_id", TmplGene, ClassGene),
			PredPADrug:   link(PredPADrug, "drug_id", TmplDrug, ClassDrug),
		},
	}
	return b.finish(DSPharmGKB)
}
