package lslod

import (
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallScale(), 42)
	b := Generate(SmallScale(), 42)
	if len(a.Diseases) != len(b.Diseases) {
		t.Fatal("non-deterministic disease count")
	}
	for i := range a.Diseases {
		if a.Diseases[i].Name != b.Diseases[i].Name || len(a.Diseases[i].Genes) != len(b.Diseases[i].Genes) {
			t.Fatalf("disease %d differs between same-seed runs", i)
		}
	}
	c := Generate(SmallScale(), 43)
	same := true
	for i := range a.Diseases {
		if a.Diseases[i].Name != c.Diseases[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical names")
	}
}

func TestScaleCounts(t *testing.T) {
	s := SmallScale()
	d := Generate(s, 1)
	if len(d.Diseases) != s.Diseases || len(d.Genes) != s.Genes ||
		len(d.Probesets) != s.Probesets || len(d.Drugs) != s.Drugs ||
		len(d.Trials) != s.Trials {
		t.Fatal("entity counts do not match scale")
	}
	links := 0
	for _, dis := range d.Diseases {
		links += len(dis.Genes)
	}
	if links != s.DiseaseGeneLinks {
		t.Errorf("disease-gene links = %d, want %d", links, s.DiseaseGeneLinks)
	}
}

func TestLinksUniqueAndInRange(t *testing.T) {
	d := Generate(SmallScale(), 5)
	for _, dis := range d.Diseases {
		seen := map[int]bool{}
		for _, g := range dis.Genes {
			if g < 1 || g > len(d.Genes) {
				t.Fatalf("gene link %d out of range", g)
			}
			if seen[g] {
				t.Fatalf("duplicate gene link %d for disease %d", g, dis.ID)
			}
			seen[g] = true
		}
	}
	for _, p := range d.Probesets {
		if p.GeneID < 1 || p.GeneID > len(d.Genes) {
			t.Fatalf("probeset gene %d out of range", p.GeneID)
		}
	}
	for _, tr := range d.Trials {
		if tr.DiseaseID < 1 || tr.DiseaseID > len(d.Diseases) {
			t.Fatalf("trial disease %d out of range", tr.DiseaseID)
		}
		if tr.DrugID < 1 || tr.DrugID > len(d.Drugs) {
			t.Fatalf("trial drug %d out of range", tr.DrugID)
		}
	}
}

func TestQ1FilterSelectivity(t *testing.T) {
	// CONTAINS(?name, "itis") must be weakly selective: between 40% and
	// 80% of diseases.
	d := Generate(DefaultScale(), 1)
	n := 0
	for _, dis := range d.Diseases {
		if strings.Contains(dis.Name, "itis") {
			n++
		}
	}
	frac := float64(n) / float64(len(d.Diseases))
	if frac < 0.4 || frac > 0.8 {
		t.Errorf("Q1 filter selectivity = %.2f, want 0.4..0.8", frac)
	}
}

func TestSpeciesSkew(t *testing.T) {
	// Homo sapiens must exceed the 15% threshold so the index is denied.
	d := Generate(DefaultScale(), 1)
	n := 0
	for _, p := range d.Probesets {
		if p.Species == "Homo sapiens" {
			n++
		}
	}
	if frac := float64(n) / float64(len(d.Probesets)); frac <= MaxIndexValueFraction {
		t.Errorf("Homo sapiens fraction = %.2f, must exceed %.2f", frac, MaxIndexValueFraction)
	}
}

func TestBuildLakeIndexRule(t *testing.T) {
	lake, err := BuildLake(SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	deniedSet := map[string]bool{}
	for _, d := range lake.DeniedIndexes {
		deniedSet[d] = true
	}
	for _, must := range []string{"probeset.species", "patient.gender", "trial.phase"} {
		if !deniedSet[must] {
			t.Errorf("%s should be denied by the 15%% rule (denied: %v)", must, lake.DeniedIndexes)
		}
	}
	// Indexed columns the queries depend on.
	aff := lake.Catalog.Source(DSAffymetrix)
	if !aff.DB.Table("probeset").HasIndexOn("chromosome") {
		t.Error("probeset.chromosome must be indexed (Q3)")
	}
	dis := lake.Catalog.Source(DSDiseasome)
	if !dis.DB.Table("disease_gene").HasIndexOn("gene_id") {
		t.Error("disease_gene.gene_id must be indexed (Q2, H1)")
	}
	if !dis.DB.Table("disease").HasIndexOn("name") {
		t.Error("disease.name must be indexed (Q1, H2)")
	}
	lct := lake.Catalog.Source(DSLinkedCT)
	if !lct.DB.Table("trial").HasIndexOn("overall_status") {
		t.Error("trial.overall_status must be indexed (Q5)")
	}
	if aff.DB.Table("probeset").HasIndexOn("species") {
		t.Error("probeset.species must NOT be indexed (15 percent rule)")
	}
}

func TestApplyIndexRule(t *testing.T) {
	db := rdb.NewDatabase("x")
	tab, err := db.CreateTable(&rdb.Schema{
		Name: "t",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "skewed", Type: rdb.TypeString},
			{Name: "uniform", Type: rdb.TypeInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := "common"
		if i%5 == 0 {
			v = "rare"
		}
		if err := tab.Insert(rdb.Row{rdb.IntValue(int64(i)), rdb.StringValue(v), rdb.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	created, err := ApplyIndexRule(tab, "skewed", rdb.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("index on a heavily skewed column should be denied")
	}
	created, err = ApplyIndexRule(tab, "uniform", rdb.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("index on unique column should be created")
	}
}

func TestAllSourcesValidateAndCount(t *testing.T) {
	lake, err := BuildLake(SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lake.Catalog.SourceIDs()); got != 10 {
		t.Fatalf("lake has %d sources, want 10", got)
	}
	for _, ds := range Datasets() {
		src := lake.Catalog.Source(ds)
		if src == nil {
			t.Fatalf("missing source %s", ds)
		}
		if src.Model != catalog.ModelRelational {
			t.Errorf("source %s should be relational", ds)
		}
		if src.DB.TotalRows() == 0 {
			t.Errorf("source %s is empty", ds)
		}
	}
	if got := len(lake.Catalog.Classes()); got != 12 {
		t.Errorf("lake registers %d molecule classes, want 12", got)
	}
}

func TestMixedLake(t *testing.T) {
	lake, err := BuildMixedLake(SmallScale(), 1, []string{DSKEGG})
	if err != nil {
		t.Fatal(err)
	}
	if lake.Catalog.Source(DSKEGG).Model != catalog.ModelRDF {
		t.Error("kegg should be RDF in the mixed lake")
	}
	if lake.Catalog.Source(DSDiseasome).Model != catalog.ModelRelational {
		t.Error("diseasome should stay relational")
	}
	if _, err := BuildMixedLake(SmallScale(), 1, []string{"nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGraphFromSourceConsistency(t *testing.T) {
	lake, err := BuildLake(SmallScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	src := lake.Catalog.Source(DSDiseasome)
	g, err := GraphFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every disease yields: rdf:type + name + class + degree, plus one
	// triple per gene link and drug link; every gene: type + 3 props.
	s := lake.Data.Scale
	links := 0
	for _, d := range lake.Data.Diseases {
		links += len(d.Genes) + len(d.Drugs)
	}
	want := s.Diseases*4 + links + s.Genes*4
	if g.Len() != want {
		t.Errorf("diseasome graph has %d triples, want %d", g.Len(), want)
	}
	// Spot check one entity.
	d0 := lake.Data.Diseases[0]
	subj := "http://lake.tib.eu/diseasome/disease/1"
	q := sparql.MustParse(`SELECT ?n WHERE { <` + subj + `> <` + PredDiseaseName + `> ?n . }`)
	sols := sparql.EvalQuery(g, q)
	if len(sols) != 1 || sols[0]["n"].Value != d0.Name {
		t.Errorf("disease 1 name = %v, want %q", sols, d0.Name)
	}
}

func TestQueriesParseAndDecompose(t *testing.T) {
	for _, bq := range Queries() {
		q, err := sparql.Parse(bq.Text)
		if err != nil {
			t.Fatalf("%s does not parse: %v", bq.ID, err)
		}
		if len(q.Patterns) == 0 {
			t.Errorf("%s has no patterns", bq.ID)
		}
		if bq.Intent == "" {
			t.Errorf("%s has no documented intent", bq.ID)
		}
	}
	if MotivatingExample() == nil {
		t.Error("motivating example missing")
	}
	defer func() {
		if recover() == nil {
			t.Error("Query(unknown) should panic")
		}
	}()
	Query("Q99")
}
