// Package lslod generates a synthetic Semantic Data Lake with the same
// structural roles as the LSLOD benchmark the paper evaluates on: ten
// life-science datasets, each available as an RDF graph and as a
// 3NF-normalized relational database with primary-key indexes plus
// selective secondary indexes, following the paper's rule that no index is
// created for an attribute whose most frequent value occurs in more than
// 15% of the records. It also defines the five benchmark queries Q1–Q5,
// engineered per the paper's stated criteria: query selectivity, filters
// over indexed attributes, and joins of star-shaped sub-queries over
// indexed attributes.
package lslod

// Base is the IRI namespace root of the synthetic lake.
const Base = "http://lake.tib.eu/"

// Dataset identifiers (the ten LSLOD datasets).
const (
	DSDiseasome  = "diseasome"
	DSAffymetrix = "affymetrix"
	DSDrugBank   = "drugbank"
	DSTCGA       = "tcga"
	DSKEGG       = "kegg"
	DSChEBI      = "chebi"
	DSSider      = "sider"
	DSLinkedCT   = "linkedct"
	DSMedicare   = "medicare"
	DSPharmGKB   = "pharmgkb"
)

// Datasets lists the dataset IDs in canonical order.
func Datasets() []string {
	return []string{
		DSDiseasome, DSAffymetrix, DSDrugBank, DSTCGA, DSKEGG,
		DSChEBI, DSSider, DSLinkedCT, DSMedicare, DSPharmGKB,
	}
}

func vocab(ds, name string) string { return Base + ds + "/vocab#" + name }

func entityTemplate(ds, kind string) string { return Base + ds + "/" + kind + "/{value}" }

// Class IRIs.
var (
	ClassDisease     = vocab(DSDiseasome, "Disease")
	ClassGene        = vocab(DSDiseasome, "Gene")
	ClassProbeset    = vocab(DSAffymetrix, "Probeset")
	ClassDrug        = vocab(DSDrugBank, "Drug")
	ClassTarget      = vocab(DSDrugBank, "Target")
	ClassPatient     = vocab(DSTCGA, "Patient")
	ClassCompound    = vocab(DSKEGG, "Compound")
	ClassChemEntity  = vocab(DSChEBI, "ChemicalEntity")
	ClassSideEffect  = vocab(DSSider, "SideEffect")
	ClassTrial       = vocab(DSLinkedCT, "Trial")
	ClassProvider    = vocab(DSMedicare, "Provider")
	ClassAssociation = vocab(DSPharmGKB, "Association")
)

// Predicate IRIs.
var (
	// Diseasome.
	PredDiseaseName    = vocab(DSDiseasome, "name")
	PredDiseaseClass   = vocab(DSDiseasome, "diseaseClass")
	PredDegree         = vocab(DSDiseasome, "degree")
	PredAssociatedGene = vocab(DSDiseasome, "associatedGene")
	PredPossibleDrug   = vocab(DSDiseasome, "possibleDrug")
	PredGeneLabel      = vocab(DSDiseasome, "geneLabel")
	PredGeneChromosome = vocab(DSDiseasome, "chromosome")
	PredGeneLength     = vocab(DSDiseasome, "geneLength")

	// Affymetrix.
	PredProbesetName    = vocab(DSAffymetrix, "probesetName")
	PredSpecies         = vocab(DSAffymetrix, "scientificName")
	PredProbeChromosome = vocab(DSAffymetrix, "chromosome")
	PredSignal          = vocab(DSAffymetrix, "signalAverage")
	PredTranscribedFrom = vocab(DSAffymetrix, "transcribedFrom")

	// DrugBank.
	PredGenericName  = vocab(DSDrugBank, "genericName")
	PredIndication   = vocab(DSDrugBank, "indication")
	PredDrugCategory = vocab(DSDrugBank, "category")
	PredMolWeight    = vocab(DSDrugBank, "molecularWeight")
	PredTarget       = vocab(DSDrugBank, "target")
	PredTargetName   = vocab(DSDrugBank, "targetName")
	PredTargetGene   = vocab(DSDrugBank, "targetGene")

	// TCGA.
	PredGender      = vocab(DSTCGA, "gender")
	PredAge         = vocab(DSTCGA, "ageAtDiagnosis")
	PredTumorSite   = vocab(DSTCGA, "tumorSite")
	PredMutatedGene = vocab(DSTCGA, "mutatedGene")

	// KEGG.
	PredFormula = vocab(DSKEGG, "formula")
	PredPathway = vocab(DSKEGG, "pathway")
	PredMass    = vocab(DSKEGG, "mass")

	// ChEBI.
	PredChebiName = vocab(DSChEBI, "chebiName")
	PredCharge    = vocab(DSChEBI, "charge")
	PredChebiMass = vocab(DSChEBI, "mass")

	// SIDER.
	PredEffectName = vocab(DSSider, "effectName")
	PredCausedBy   = vocab(DSSider, "causedBy")

	// LinkedCT.
	PredTrialTitle   = vocab(DSLinkedCT, "title")
	PredPhase        = vocab(DSLinkedCT, "phase")
	PredStatus       = vocab(DSLinkedCT, "overallStatus")
	PredCondition    = vocab(DSLinkedCT, "condition")
	PredIntervention = vocab(DSLinkedCT, "intervention")

	// Medicare.
	PredProviderName = vocab(DSMedicare, "providerName")
	PredState        = vocab(DSMedicare, "state")
	PredSpecialty    = vocab(DSMedicare, "specialty")
	PredPrescribes   = vocab(DSMedicare, "prescribes")

	// PharmGKB.
	PredEvidence = vocab(DSPharmGKB, "evidence")
	PredScore    = vocab(DSPharmGKB, "score")
	PredPAGene   = vocab(DSPharmGKB, "gene")
	PredPADrug   = vocab(DSPharmGKB, "drug")
)

// Entity IRI templates.
var (
	TmplDisease     = entityTemplate(DSDiseasome, "disease")
	TmplGene        = entityTemplate(DSDiseasome, "gene")
	TmplProbeset    = entityTemplate(DSAffymetrix, "probeset")
	TmplDrug        = entityTemplate(DSDrugBank, "drug")
	TmplTarget      = entityTemplate(DSDrugBank, "target")
	TmplPatient     = entityTemplate(DSTCGA, "patient")
	TmplCompound    = entityTemplate(DSKEGG, "compound")
	TmplChemEntity  = entityTemplate(DSChEBI, "entity")
	TmplSideEffect  = entityTemplate(DSSider, "effect")
	TmplTrial       = entityTemplate(DSLinkedCT, "trial")
	TmplProvider    = entityTemplate(DSMedicare, "provider")
	TmplAssociation = entityTemplate(DSPharmGKB, "association")
)
