package lslod

import (
	"ontario/internal/catalog"
	"ontario/internal/rdb"
)

// buildDiseasomeDenormalized stores Diseasome as a single wide table —
// the paper's future-work "not normalized tables" setting. Each disease
// appears once per (gene, drug) combination; diseases without genes or
// drugs keep a NULL in that column. The subject column repeats across
// rows, so it is no longer the primary key; wrappers recover RDF set
// semantics with SELECT DISTINCT.
func buildDiseasomeDenormalized(d *Data) (*datasetSpec, []string) {
	b := newRelationalBuilder(DSDiseasome)
	wide := b.table(&rdb.Schema{
		Name: "disease_wide",
		Columns: []rdb.Column{
			pkCol("row_id"),
			{Name: "disease_id", Type: rdb.TypeInt, NotNull: true},
			strCol("name"), strCol("disease_class"), intCol("degree"),
			intCol("gene_id"), intCol("drug_id"),
		},
		PrimaryKey: "row_id",
	})
	gene := b.table(&rdb.Schema{
		Name:       "gene",
		Columns:    []rdb.Column{pkCol("id"), strCol("label"), strCol("chromosome"), intCol("gene_length")},
		PrimaryKey: "id",
	})

	rowID := 0
	nullInt := rdb.NullValue(rdb.TypeInt)
	for _, dis := range d.Diseases {
		genes := dis.Genes
		if len(genes) == 0 {
			genes = []int{0}
		}
		drugs := dis.Drugs
		if len(drugs) == 0 {
			drugs = []int{0}
		}
		for _, g := range genes {
			for _, dr := range drugs {
				rowID++
				gv, dv := nullInt, nullInt
				if g != 0 {
					gv = rdb.IntValue(int64(g))
				}
				if dr != 0 {
					dv = rdb.IntValue(int64(dr))
				}
				b.insert(wide, rdb.Row{
					rdb.IntValue(int64(rowID)), rdb.IntValue(int64(dis.ID)),
					rdb.StringValue(dis.Name), rdb.StringValue(dis.Class),
					rdb.IntValue(int64(dis.Degree)), gv, dv,
				})
			}
		}
	}
	for _, g := range d.Genes {
		b.insert(gene, rdb.Row{
			rdb.IntValue(int64(g.ID)), rdb.StringValue(g.Label),
			rdb.StringValue(g.Chromosome), rdb.IntValue(int64(g.Length)),
		})
	}

	b.want("disease_wide", "disease_id", rdb.IndexHash)
	b.want("disease_wide", "name", rdb.IndexHash)
	b.want("disease_wide", "disease_class", rdb.IndexHash)
	b.want("disease_wide", "degree", rdb.IndexBTree)
	b.want("disease_wide", "gene_id", rdb.IndexHash)
	b.want("disease_wide", "drug_id", rdb.IndexHash)
	b.want("gene", "chromosome", rdb.IndexHash)
	b.want("gene", "gene_length", rdb.IndexBTree)

	b.mappings[ClassDisease] = &catalog.ClassMapping{
		Class: ClassDisease, Table: "disease_wide",
		SubjectColumn: "disease_id", SubjectTemplate: TmplDisease,
		Denormalized: true,
		Properties: map[string]*catalog.PropertyMapping{
			PredDiseaseName:    direct(PredDiseaseName, "name"),
			PredDiseaseClass:   direct(PredDiseaseClass, "disease_class"),
			PredDegree:         direct(PredDegree, "degree"),
			PredAssociatedGene: link(PredAssociatedGene, "gene_id", TmplGene, ClassGene),
			PredPossibleDrug:   link(PredPossibleDrug, "drug_id", TmplDrug, ClassDrug),
		},
	}
	b.mappings[ClassGene] = &catalog.ClassMapping{
		Class: ClassGene, Table: "gene",
		SubjectColumn: "id", SubjectTemplate: TmplGene,
		Properties: map[string]*catalog.PropertyMapping{
			PredGeneLabel:      direct(PredGeneLabel, "label"),
			PredGeneChromosome: direct(PredGeneChromosome, "chromosome"),
			PredGeneLength:     direct(PredGeneLength, "gene_length"),
		},
	}
	return b.finish(DSDiseasome)
}

// BuildDenormalizedLake assembles the lake with Diseasome stored
// denormalized (wide table) instead of 3NF, for the normalization
// ablation.
func BuildDenormalizedLake(scale Scale, seed int64) (*Lake, error) {
	data := Generate(scale, seed)
	specs, denied := relationalSpecs(data)
	dspec, extraDenied := buildDiseasomeDenormalized(data)
	specs[DSDiseasome] = dspec
	denied = append(denied, extraDenied...)
	return assembleLake(data, specs, denied, nil, nil)
}
