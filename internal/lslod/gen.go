package lslod

import (
	"fmt"
	"math/rand"
)

// Scale sets the entity counts of the synthetic lake.
type Scale struct {
	Diseases          int
	Genes             int
	DiseaseGeneLinks  int
	PossibleDrugLinks int
	Probesets         int
	Drugs             int
	Targets           int
	DrugTargetLinks   int
	Patients          int
	PatientGeneLinks  int
	Compounds         int
	ChemEntities      int
	Effects           int
	Trials            int
	Providers         int
	ProviderDrugLinks int
	Associations      int
}

// DefaultScale is the size used by the experiment harness; large enough for
// meaningful intermediate results, small enough to run the full grid in
// seconds.
func DefaultScale() Scale {
	return Scale{
		Diseases:          400,
		Genes:             1200,
		DiseaseGeneLinks:  1800,
		PossibleDrugLinks: 800,
		Probesets:         3000,
		Drugs:             600,
		Targets:           400,
		DrugTargetLinks:   900,
		Patients:          800,
		PatientGeneLinks:  1200,
		Compounds:         500,
		ChemEntities:      600,
		Effects:           900,
		Trials:            700,
		Providers:         400,
		ProviderDrugLinks: 800,
		Associations:      900,
	}
}

// SmallScale is a reduced size for unit tests.
func SmallScale() Scale {
	return Scale{
		Diseases:          60,
		Genes:             150,
		DiseaseGeneLinks:  220,
		PossibleDrugLinks: 100,
		Probesets:         320,
		Drugs:             80,
		Targets:           60,
		DrugTargetLinks:   110,
		Patients:          90,
		PatientGeneLinks:  130,
		Compounds:         60,
		ChemEntities:      70,
		Effects:           100,
		Trials:            90,
		Providers:         50,
		ProviderDrugLinks: 90,
		Associations:      110,
	}
}

// Entity records. IDs are 1-based and dense per kind.

// Disease is a Diseasome disease.
type Disease struct {
	ID     int
	Name   string
	Class  string
	Degree int
	Genes  []int // associated gene IDs
	Drugs  []int // possible drug IDs (DrugBank)
}

// Gene is a Diseasome gene.
type Gene struct {
	ID         int
	Label      string
	Chromosome string
	Length     int
}

// Probeset is an Affymetrix probeset.
type Probeset struct {
	ID         int
	Name       string
	Species    string
	Chromosome string
	Signal     float64
	GeneID     int
}

// Drug is a DrugBank drug.
type Drug struct {
	ID          int
	GenericName string
	Indication  string
	Category    string
	Weight      float64
	Targets     []int
}

// Target is a DrugBank target.
type Target struct {
	ID     int
	Name   string
	GeneID int
}

// Patient is a TCGA patient.
type Patient struct {
	ID        int
	Gender    string
	Age       int
	TumorSite string
	Genes     []int // mutated genes
}

// Compound is a KEGG compound.
type Compound struct {
	ID      int
	Formula string
	Pathway string
	Mass    float64
}

// ChemEntity is a ChEBI chemical entity.
type ChemEntity struct {
	ID     int
	Name   string
	Charge int
	Mass   float64
}

// Effect is a SIDER side effect occurrence.
type Effect struct {
	ID     int
	Name   string
	DrugID int
}

// Trial is a LinkedCT clinical trial.
type Trial struct {
	ID        int
	Title     string
	Phase     string
	Status    string
	DiseaseID int
	DrugID    int
}

// Provider is a Medicare provider.
type Provider struct {
	ID        int
	Name      string
	State     string
	Specialty string
	Drugs     []int
}

// Association is a PharmGKB gene–drug association.
type Association struct {
	ID       int
	Evidence string
	Score    float64
	GeneID   int
	DrugID   int
}

// Data is the generated entity universe shared by the RDF and relational
// representations.
type Data struct {
	Scale        Scale
	Diseases     []Disease
	Genes        []Gene
	Probesets    []Probeset
	Drugs        []Drug
	Targets      []Target
	Patients     []Patient
	Compounds    []Compound
	ChemEntities []ChemEntity
	Effects      []Effect
	Trials       []Trial
	Providers    []Provider
	Associations []Association
}

// Value pools. diseaseSuffixes is weighted so that CONTAINS(?name, "itis")
// matches roughly 60% of diseases (Q1's weakly selective filter), while
// speciesPool is dominated by Homo sapiens (>15% of records, so the species
// attribute is denied an index, as in the paper's motivating example).
var (
	diseaseRoots    = []string{"cardi", "neur", "derm", "hepat", "nephr", "arthr", "gastr", "oste", "my", "encephal", "bronch", "col", "phleb", "rhin", "laryng"}
	diseaseSuffixes = []string{"itis", "itis", "itis", "itis", "itis", "itis", "oma", "oma", "opathy", "osis"}
	diseaseClasses  = []string{"Cancer", "Metabolic", "Neurological", "Cardiovascular", "Immunological", "Respiratory", "Dermatological", "Skeletal", "Endocrine", "Ophthamological", "Renal", "Gastrointestinal", "Hematological", "Muscular", "Psychiatric", "Developmental", "Connective tissue", "Unclassified"}
	speciesPool     = []string{
		"Homo sapiens", "Homo sapiens", "Homo sapiens", "Homo sapiens", "Homo sapiens",
		"Homo sapiens", "Homo sapiens", "Homo sapiens", "Homo sapiens", "Homo sapiens",
		"Homo sapiens", "Mus musculus", "Mus musculus", "Mus musculus", "Mus musculus",
		"Rattus norvegicus", "Rattus norvegicus", "Danio rerio", "Drosophila melanogaster", "Caenorhabditis elegans",
	}
	drugCategories = []string{"antibiotic", "antiviral", "analgesic", "antihistamine", "antineoplastic", "anticoagulant", "antidepressant", "antihypertensive", "diuretic", "sedative", "vaccine", "hormone", "immunosuppressant", "bronchodilator", "statin"}
	tumorSites     = []string{"lung", "breast", "colon", "prostate", "stomach", "liver", "pancreas", "kidney", "bladder", "brain", "ovary", "cervix", "esophagus", "larynx", "thyroid", "skin", "bone", "blood", "lymph", "testis"}
	pathways       = []string{"glycolysis", "tca-cycle", "pentose-phosphate", "fatty-acid-synthesis", "beta-oxidation", "urea-cycle", "purine-metabolism", "pyrimidine-metabolism", "amino-acid-degradation", "oxidative-phosphorylation", "calvin-cycle", "methane-metabolism", "nitrogen-metabolism", "sulfur-metabolism", "steroid-biosynthesis", "terpenoid-backbone", "folate-biosynthesis", "retinol-metabolism", "drug-metabolism", "xenobiotics-degradation", "mapk-signaling", "wnt-signaling", "notch-signaling", "hedgehog-signaling", "jak-stat-signaling", "tgf-beta-signaling", "vegf-signaling", "apoptosis", "cell-cycle", "p53-signaling"}
	phases         = []string{"Phase 1", "Phase 2", "Phase 3", "Phase 4"}
	statuses       = []string{"Recruiting", "Completed", "Terminated", "Suspended", "Withdrawn", "Active", "Enrolling", "Unknown", "Not yet recruiting", "Available", "Approved", "No longer available"}
	states         = []string{"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"}
	specialties    = []string{"cardiology", "neurology", "oncology", "dermatology", "pediatrics", "psychiatry", "radiology", "surgery", "urology", "orthopedics", "gastroenterology", "endocrinology", "nephrology", "pulmonology", "rheumatology", "hematology", "immunology", "anesthesiology", "pathology", "ophthalmology", "family-medicine", "internal-medicine", "emergency", "geriatrics", "obstetrics", "otolaryngology", "plastic-surgery", "infectious-disease", "sports-medicine", "allergy"}
	evidences      = []string{"clinical-annotation", "variant-annotation", "pathway", "literature", "label-annotation", "guideline", "dosing", "functional-assay", "gwas", "case-report"}
	effectNames    = []string{"nausea", "headache", "dizziness", "fatigue", "insomnia", "rash", "pruritus", "vomiting", "diarrhea", "constipation", "dry-mouth", "anemia", "fever", "cough", "dyspnea", "edema", "hypotension", "hypertension", "tachycardia", "bradycardia", "anxiety", "tremor", "myalgia", "arthralgia", "neutropenia", "thrombocytopenia", "alopecia", "anorexia", "weight-gain", "weight-loss", "blurred-vision", "tinnitus", "vertigo", "dysgeusia", "photosensitivity", "hyperglycemia", "hypoglycemia", "hyperkalemia", "hypokalemia", "somnolence", "confusion", "depression", "irritability", "palpitations", "flushing", "sweating", "chills", "back-pain", "chest-pain", "abdominal-pain", "dyspepsia", "flatulence", "xerostomia", "stomatitis", "epistaxis", "ecchymosis", "urticaria", "dermatitis", "hypersensitivity", "syncope"}
)

func chromosomes() []string {
	out := make([]string, 0, 24)
	for i := 1; i <= 22; i++ {
		out = append(out, fmt.Sprintf("chr%d", i))
	}
	return append(out, "chrX", "chrY")
}

// Generate builds a deterministic synthetic entity universe for the scale
// and seed.
func Generate(scale Scale, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{Scale: scale}
	chroms := chromosomes()

	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }

	// linkSet generates n distinct (left, right) link pairs; uniqueness
	// mirrors the UNIQUE constraint a 3NF link table would carry and keeps
	// the relational bag semantics aligned with RDF set semantics.
	linkSet := func(n, lefts, rights int, add func(li, ri int)) {
		seen := map[[2]int]bool{}
		for len(seen) < n && len(seen) < lefts*rights {
			li, ri := rng.Intn(lefts), 1+rng.Intn(rights)
			k := [2]int{li, ri}
			if seen[k] {
				continue
			}
			seen[k] = true
			add(li, ri)
		}
	}

	for i := 1; i <= scale.Genes; i++ {
		d.Genes = append(d.Genes, Gene{
			ID:         i,
			Label:      fmt.Sprintf("%s%d", pick([]string{"BRCA", "TP", "EGFR", "KRAS", "MYC", "PTEN", "RB", "APC", "VHL", "ATM", "CFTR", "HBB", "LDLR", "APOE", "TNF"}), i),
			Chromosome: pick(chroms),
			Length:     500 + rng.Intn(20000),
		})
	}
	// Disease names are long descriptive labels (as in real disease
	// ontologies). The weighted suffix pool makes CONTAINS(?name, "itis")
	// match about 60% of them — Q1's weakly selective string filter. The
	// length matters: evaluating the pushed-down LIKE '%itis%' at the
	// relational source costs a per-row backtracking scan, reproducing the
	// paper's observation that string filters run slower at the RDB than
	// at the query engine.
	for i := 1; i <= scale.Diseases; i++ {
		d.Diseases = append(d.Diseases, Disease{
			ID: i,
			Name: fmt.Sprintf("%s%s, a %s disorder of the %s with %s onset and %s progression, variant %d",
				pick(diseaseRoots), pick(diseaseSuffixes),
				pick([]string{"chronic", "acute", "recurrent", "progressive", "congenital", "idiopathic"}),
				pick([]string{"cardiovascular system", "central nervous system", "hepatic parenchyma", "renal cortex", "skeletal musculature", "gastrointestinal tract", "respiratory epithelium", "integumentary system"}),
				pick([]string{"juvenile", "adult", "late", "neonatal", "variable"}),
				pick([]string{"rapid", "slow", "relapsing", "stable", "fulminant"}),
				i),
			Class:  pick(diseaseClasses),
			Degree: 1 + rng.Intn(40),
		})
	}
	linkSet(scale.DiseaseGeneLinks, scale.Diseases, scale.Genes, func(di, g int) {
		d.Diseases[di].Genes = append(d.Diseases[di].Genes, g)
	})
	for i := 1; i <= scale.Drugs; i++ {
		d.Drugs = append(d.Drugs, Drug{
			ID:          i,
			GenericName: fmt.Sprintf("%s%s-%d", pick([]string{"ab", "ce", "do", "flu", "ga", "ibu", "keto", "lora", "meto", "na", "oxa", "pra", "quina", "rosu", "simva"}), pick([]string{"profen", "statin", "cillin", "mycin", "prazole", "olol", "sartan", "dipine", "azepam", "caine"}), i),
			Indication:  pick(diseaseRoots) + pick(diseaseSuffixes),
			Category:    pick(drugCategories),
			Weight:      100 + rng.Float64()*900,
		})
	}
	linkSet(scale.PossibleDrugLinks, scale.Diseases, scale.Drugs, func(di, dr int) {
		d.Diseases[di].Drugs = append(d.Diseases[di].Drugs, dr)
	})
	for i := 1; i <= scale.Targets; i++ {
		d.Targets = append(d.Targets, Target{
			ID:     i,
			Name:   fmt.Sprintf("target-%d", i),
			GeneID: 1 + rng.Intn(scale.Genes),
		})
	}
	linkSet(scale.DrugTargetLinks, scale.Drugs, scale.Targets, func(dr, tg int) {
		d.Drugs[dr].Targets = append(d.Drugs[dr].Targets, tg)
	})
	for i := 1; i <= scale.Probesets; i++ {
		d.Probesets = append(d.Probesets, Probeset{
			ID:         i,
			Name:       fmt.Sprintf("%d_at", 200000+i),
			Species:    pick(speciesPool),
			Chromosome: pick(chroms),
			Signal:     rng.Float64() * 1000,
			GeneID:     1 + rng.Intn(scale.Genes),
		})
	}
	for i := 1; i <= scale.Patients; i++ {
		d.Patients = append(d.Patients, Patient{
			ID:        i,
			Gender:    pick([]string{"male", "female"}),
			Age:       18 + rng.Intn(70),
			TumorSite: pick(tumorSites),
		})
	}
	linkSet(scale.PatientGeneLinks, scale.Patients, scale.Genes, func(p, g int) {
		d.Patients[p].Genes = append(d.Patients[p].Genes, g)
	})
	for i := 1; i <= scale.Compounds; i++ {
		d.Compounds = append(d.Compounds, Compound{
			ID:      i,
			Formula: fmt.Sprintf("C%dH%dO%d", 1+rng.Intn(30), 1+rng.Intn(60), rng.Intn(12)),
			Pathway: pick(pathways),
			Mass:    20 + rng.Float64()*800,
		})
	}
	for i := 1; i <= scale.ChemEntities; i++ {
		d.ChemEntities = append(d.ChemEntities, ChemEntity{
			ID:     i,
			Name:   fmt.Sprintf("chebi-entity-%d", i),
			Charge: rng.Intn(7) - 3,
			Mass:   20 + rng.Float64()*800,
		})
	}
	for i := 1; i <= scale.Effects; i++ {
		d.Effects = append(d.Effects, Effect{
			ID:     i,
			Name:   pick(effectNames),
			DrugID: 1 + rng.Intn(scale.Drugs),
		})
	}
	for i := 1; i <= scale.Trials; i++ {
		d.Trials = append(d.Trials, Trial{
			ID:        i,
			Title:     fmt.Sprintf("Study of %s in %s (%d)", pick(drugCategories), pick(tumorSites), i),
			Phase:     pick(phases),
			Status:    pick(statuses),
			DiseaseID: 1 + rng.Intn(scale.Diseases),
			DrugID:    1 + rng.Intn(scale.Drugs),
		})
	}
	for i := 1; i <= scale.Providers; i++ {
		d.Providers = append(d.Providers, Provider{
			ID:        i,
			Name:      fmt.Sprintf("provider-%d", i),
			State:     pick(states),
			Specialty: pick(specialties),
		})
	}
	linkSet(scale.ProviderDrugLinks, scale.Providers, scale.Drugs, func(p, dr int) {
		d.Providers[p].Drugs = append(d.Providers[p].Drugs, dr)
	})
	for i := 1; i <= scale.Associations; i++ {
		d.Associations = append(d.Associations, Association{
			ID:       i,
			Evidence: pick(evidences),
			Score:    rng.Float64(),
			GeneID:   1 + rng.Intn(scale.Genes),
			DrugID:   1 + rng.Intn(scale.Drugs),
		})
	}
	return d
}
