package lslod

import (
	"fmt"

	"ontario/internal/sparql"
)

// BenchmarkQuery is one of the five queries tailored for the heuristics.
// The paper designed its queries around three parameters: (a) query
// selectivity, (b) filter expressions over indexed attributes, and (c)
// joins of star-shaped sub-queries over indexed attributes; each query
// documents which parameter it stresses.
type BenchmarkQuery struct {
	ID     string
	Intent string
	Text   string
}

// Queries returns Q1–Q5.
func Queries() []BenchmarkQuery {
	return []BenchmarkQuery{
		{
			ID: "Q1",
			Intent: "Heuristic 2, weakly selective string filter over an INDEXED attribute " +
				"(disease.name): pushing it down turns into a LIKE the relational engine " +
				"cannot serve from its hash index, so engine-level filtering wins on fast " +
				"networks — the paper's 'Q1 supports Heuristic 2' case.",
			Text: fmt.Sprintf(`
SELECT ?disease ?name ?gene WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?name .
  ?disease <%s> ?gene .
  FILTER (CONTAINS(?name, "itis"))
}`, rdfTypeIRI, ClassDisease, PredDiseaseName, PredAssociatedGene),
		},
		{
			ID: "Q2",
			Intent: "Heuristic 1, join of two star-shaped sub-queries over the SAME relational " +
				"endpoint (Diseasome) on an indexed join attribute (?gene: disease_gene.gene_id " +
				"and gene.id are both indexed): the physical-design-aware plan pushes the join " +
				"into a single SQL query. Translation quality decides whether the pushdown " +
				"pays off (the paper's Q2 finding).",
			Text: fmt.Sprintf(`
SELECT ?disease ?dname ?gene ?glabel WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?dname .
  ?disease <%s> ?gene .
  ?gene <%s> <%s> .
  ?gene <%s> ?glabel .
  ?gene <%s> ?chrom .
  FILTER (?chrom = "chr7")
}`, rdfTypeIRI, ClassDisease, PredDiseaseName, PredAssociatedGene,
				rdfTypeIRI, ClassGene, PredGeneLabel, PredGeneChromosome),
		},
		{
			ID: "Q3",
			Intent: "Heuristic 2 counter-case (Figure 2): highly selective equality filter over " +
				"an INDEXED attribute (probeset.chromosome, ~1/24 of the records): pushing it " +
				"down becomes an index lookup and shrinks the transferred intermediate result " +
				"dramatically, so the physical-design-aware plan wins at every network setting.",
			Text: fmt.Sprintf(`
SELECT ?probe ?pname ?signal ?gene ?glabel WHERE {
  ?probe <%s> <%s> .
  ?probe <%s> ?pname .
  ?probe <%s> ?signal .
  ?probe <%s> ?gene .
  ?probe <%s> ?chrom .
  ?gene <%s> <%s> .
  ?gene <%s> ?glabel .
  FILTER (?chrom = "chr11")
}`, rdfTypeIRI, ClassProbeset, PredProbesetName, PredSignal, PredTranscribedFrom,
				PredProbeChromosome, rdfTypeIRI, ClassGene, PredGeneLabel),
		},
		{
			ID: "Q4",
			Intent: "The motivating example (Figure 1): genes and diseases live in one source " +
				"(Diseasome), so their join is pushed down (Heuristic 1), while the species " +
				"filter on Affymetrix stays at the engine because scientificName is DENIED an " +
				"index by the 15% rule.",
			Text: fmt.Sprintf(`
SELECT ?disease ?gene ?probe WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> "Cancer" .
  ?disease <%s> ?gene .
  ?gene <%s> <%s> .
  ?gene <%s> ?glabel .
  ?probe <%s> <%s> .
  ?probe <%s> ?gene .
  ?probe <%s> ?species .
  FILTER (?species = "Homo sapiens")
}`, rdfTypeIRI, ClassDisease, PredDiseaseClass, PredAssociatedGene,
				rdfTypeIRI, ClassGene, PredGeneLabel,
				rdfTypeIRI, ClassProbeset, PredTranscribedFrom, PredSpecies),
		},
		{
			ID: "Q5",
			Intent: "Three-source federation (LinkedCT ⋈ Diseasome ⋈ DrugBank) with a selective " +
				"filter over an indexed attribute (trial.overall_status, 12 values): stresses " +
				"source selection, engine-level adaptive joins, and Heuristic 2 across sources.",
			Text: fmt.Sprintf(`
SELECT ?trial ?title ?dname ?drugname WHERE {
  ?trial <%s> <%s> .
  ?trial <%s> ?title .
  ?trial <%s> ?status .
  ?trial <%s> ?disease .
  ?trial <%s> ?drug .
  ?disease <%s> <%s> .
  ?disease <%s> ?dname .
  ?drug <%s> <%s> .
  ?drug <%s> ?drugname .
  FILTER (?status = "Recruiting")
}`, rdfTypeIRI, ClassTrial, PredTrialTitle, PredStatus, PredCondition, PredIntervention,
				rdfTypeIRI, ClassDisease, PredDiseaseName,
				rdfTypeIRI, ClassDrug, PredGenericName),
		},
	}
}

const rdfTypeIRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// QueryText returns the query text by ID (Q1–Q5); it panics on an unknown
// ID.
func QueryText(id string) string {
	for _, q := range Queries() {
		if q.ID == id {
			return q.Text
		}
	}
	panic(fmt.Sprintf("lslod: unknown query %s", id))
}

// Query returns the parsed query by ID (Q1–Q5); it panics on an unknown ID.
func Query(id string) *sparql.Query {
	for _, q := range Queries() {
		if q.ID == id {
			return sparql.MustParse(q.Text)
		}
	}
	panic(fmt.Sprintf("lslod: unknown query %s", id))
}

// MotivatingExample returns the Figure-1 query (Q4).
func MotivatingExample() *sparql.Query { return Query("Q4") }
