package lslod

import (
	"fmt"
	"sort"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
)

// GraphFromSource materializes the RDF view of a relational source by
// walking its class mappings — the inverse of the paper's RDF-to-relational
// transformation. It is used to build mixed (RDF + relational) lakes and to
// cross-check wrapper results against direct RDF evaluation.
func GraphFromSource(src *catalog.Source) (*rdf.Graph, error) {
	if src.Model != catalog.ModelRelational {
		return nil, fmt.Errorf("lslod: source %s is not relational", src.ID)
	}
	g := rdf.NewGraph()
	classes := make([]string, 0, len(src.Mappings))
	for c := range src.Mappings {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cm := src.Mappings[class]
		if err := exportClass(g, src, cm); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func exportClass(g *rdf.Graph, src *catalog.Source, cm *catalog.ClassMapping) error {
	res, err := src.DB.Query("SELECT * FROM " + cm.Table)
	if err != nil {
		return err
	}
	t := src.DB.Table(cm.Table)
	pkIdx := t.Schema.ColumnIndex(cm.SubjectColumn)
	typeIRI := rdf.NewIRI(rdf.RDFType)
	classIRI := rdf.NewIRI(cm.Class)

	preds := make([]string, 0, len(cm.Properties))
	for p := range cm.Properties {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	for _, row := range res.Rows {
		subj := rdf.NewIRI(cm.SubjectIRI(row[pkIdx].String()))
		g.Add(rdf.Triple{S: subj, P: typeIRI, O: classIRI})
		for _, p := range preds {
			pm := cm.Properties[p]
			predIRI := rdf.NewIRI(p)
			if pm.IsJoin() {
				if err := exportSideTable(g, src, subj, predIRI, row[pkIdx], pm); err != nil {
					return err
				}
				continue
			}
			ci := t.Schema.ColumnIndex(pm.Column)
			v := row[ci]
			if v.Null {
				continue
			}
			g.Add(rdf.Triple{S: subj, P: predIRI, O: storageTerm(v, pm.ObjectTemplate)})
		}
	}
	return nil
}

func exportSideTable(g *rdf.Graph, src *catalog.Source, subj, pred rdf.Term, key rdb.Value, pm *catalog.PropertyMapping) error {
	stmt := fmt.Sprintf("SELECT %s FROM %s WHERE %s = %s",
		pm.ValueColumn, pm.JoinTable, pm.JoinFK, sqlLiteral(key))
	res, err := src.DB.Query(stmt)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		if row[0].Null {
			continue
		}
		g.Add(rdf.Triple{S: subj, P: pred, O: storageTerm(row[0], pm.ObjectTemplate)})
	}
	return nil
}

func sqlLiteral(v rdb.Value) string {
	if v.Type == rdb.TypeString {
		return "'" + v.Str + "'"
	}
	return v.String()
}

func storageTerm(v rdb.Value, template string) rdf.Term {
	if template != "" {
		return rdf.NewIRI(catalog.RenderTemplate(template, v.String()))
	}
	switch v.Type {
	case rdb.TypeInt:
		return rdf.IntLiteral(v.Int)
	case rdb.TypeFloat:
		return rdf.FloatLiteral(v.Float)
	case rdb.TypeBool:
		return rdf.BoolLiteral(v.Bool)
	default:
		return rdf.NewLiteral(v.Str)
	}
}
