package lslod

import (
	"fmt"
	"sort"

	"ontario/internal/catalog"
)

// Lake is a fully assembled synthetic Semantic Data Lake.
type Lake struct {
	Catalog *catalog.Catalog
	Data    *Data
	// DeniedIndexes lists "table.column" index requests denied by the 15%
	// rule.
	DeniedIndexes []string
}

// moleculeSpec declares one RDF-MT.
type moleculeSpec struct {
	class   string
	dataset string
	preds   []catalog.PredicateDesc
}

func moleculeSpecs() []moleculeSpec {
	return []moleculeSpec{
		{ClassDisease, DSDiseasome, []catalog.PredicateDesc{
			{Predicate: PredDiseaseName}, {Predicate: PredDiseaseClass}, {Predicate: PredDegree},
			{Predicate: PredAssociatedGene, LinkedClass: ClassGene},
			{Predicate: PredPossibleDrug, LinkedClass: ClassDrug},
		}},
		{ClassGene, DSDiseasome, []catalog.PredicateDesc{
			{Predicate: PredGeneLabel}, {Predicate: PredGeneChromosome}, {Predicate: PredGeneLength},
		}},
		{ClassProbeset, DSAffymetrix, []catalog.PredicateDesc{
			{Predicate: PredProbesetName}, {Predicate: PredSpecies}, {Predicate: PredProbeChromosome},
			{Predicate: PredSignal}, {Predicate: PredTranscribedFrom, LinkedClass: ClassGene},
		}},
		{ClassDrug, DSDrugBank, []catalog.PredicateDesc{
			{Predicate: PredGenericName}, {Predicate: PredIndication}, {Predicate: PredDrugCategory},
			{Predicate: PredMolWeight}, {Predicate: PredTarget, LinkedClass: ClassTarget},
		}},
		{ClassTarget, DSDrugBank, []catalog.PredicateDesc{
			{Predicate: PredTargetName}, {Predicate: PredTargetGene, LinkedClass: ClassGene},
		}},
		{ClassPatient, DSTCGA, []catalog.PredicateDesc{
			{Predicate: PredGender}, {Predicate: PredAge}, {Predicate: PredTumorSite},
			{Predicate: PredMutatedGene, LinkedClass: ClassGene},
		}},
		{ClassCompound, DSKEGG, []catalog.PredicateDesc{
			{Predicate: PredFormula}, {Predicate: PredPathway}, {Predicate: PredMass},
		}},
		{ClassChemEntity, DSChEBI, []catalog.PredicateDesc{
			{Predicate: PredChebiName}, {Predicate: PredCharge}, {Predicate: PredChebiMass},
		}},
		{ClassSideEffect, DSSider, []catalog.PredicateDesc{
			{Predicate: PredEffectName}, {Predicate: PredCausedBy, LinkedClass: ClassDrug},
		}},
		{ClassTrial, DSLinkedCT, []catalog.PredicateDesc{
			{Predicate: PredTrialTitle}, {Predicate: PredPhase}, {Predicate: PredStatus},
			{Predicate: PredCondition, LinkedClass: ClassDisease},
			{Predicate: PredIntervention, LinkedClass: ClassDrug},
		}},
		{ClassProvider, DSMedicare, []catalog.PredicateDesc{
			{Predicate: PredProviderName}, {Predicate: PredState}, {Predicate: PredSpecialty},
			{Predicate: PredPrescribes, LinkedClass: ClassDrug},
		}},
		{ClassAssociation, DSPharmGKB, []catalog.PredicateDesc{
			{Predicate: PredEvidence}, {Predicate: PredScore},
			{Predicate: PredPAGene, LinkedClass: ClassGene},
			{Predicate: PredPADrug, LinkedClass: ClassDrug},
		}},
	}
}

// BuildLake generates the data and assembles the paper's experimental
// setup: every dataset stored relationally (the RDF version of each LSLOD
// dataset transformed into 3NF tables with rule-filtered indexes).
func BuildLake(scale Scale, seed int64) (*Lake, error) {
	return buildLake(scale, seed, nil)
}

// BuildMixedLake keeps the named datasets in their native RDF model and the
// rest relational, exercising the Semantic-Data-Lake heterogeneity the
// system is designed for.
func BuildMixedLake(scale Scale, seed int64, rdfDatasets []string) (*Lake, error) {
	asRDF := map[string]bool{}
	for _, ds := range rdfDatasets {
		valid := false
		for _, known := range Datasets() {
			if ds == known {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("lslod: unknown dataset %q", ds)
		}
		asRDF[ds] = true
	}
	return buildLake(scale, seed, asRDF)
}

func buildLake(scale Scale, seed int64, asRDF map[string]bool) (*Lake, error) {
	data := Generate(scale, seed)
	sources, denied := BuildRelationalSources(data)
	return assembleLake(data, sources, denied, asRDF)
}

// assembleLake registers the sources (optionally converting some to native
// RDF) and the molecule templates.
func assembleLake(data *Data, sources map[string]*catalog.Source, denied []string, asRDF map[string]bool) (*Lake, error) {
	cat := catalog.New()

	ids := make([]string, 0, len(sources))
	for id := range sources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		src := sources[id]
		if asRDF[id] {
			g, err := GraphFromSource(src)
			if err != nil {
				return nil, err
			}
			src = &catalog.Source{ID: id, Model: catalog.ModelRDF, Graph: g}
		}
		if err := cat.AddSource(src); err != nil {
			return nil, err
		}
	}
	for _, spec := range moleculeSpecs() {
		cat.AddMT(&catalog.RDFMT{
			Class:      spec.class,
			Predicates: spec.preds,
			Sources:    []string{spec.dataset},
		})
	}
	return &Lake{Catalog: cat, Data: data, DeniedIndexes: denied}, nil
}
