package lslod

import (
	"fmt"
	"sort"

	"ontario/internal/bridge"
	"ontario/internal/catalog"
	"ontario/internal/rdf"
	"ontario/lake"
)

// Lake is a fully assembled synthetic Semantic Data Lake. It is built
// through the public lake.Builder — the same path external library users
// take — and keeps the internal catalog handle for in-module tools.
type Lake struct {
	// Lake is the public data-lake handle; hand it to ontario.New.
	Lake *lake.Lake
	// Catalog is the underlying internal catalog, for in-module tooling
	// and tests.
	Catalog *catalog.Catalog
	Data    *Data
	// DeniedIndexes lists "table.column" index requests denied by the 15%
	// rule.
	DeniedIndexes []string
}

// moleculeSpec declares one RDF-MT.
type moleculeSpec struct {
	class   string
	dataset string
	preds   []catalog.PredicateDesc
}

func moleculeSpecs() []moleculeSpec {
	return []moleculeSpec{
		{ClassDisease, DSDiseasome, []catalog.PredicateDesc{
			{Predicate: PredDiseaseName}, {Predicate: PredDiseaseClass}, {Predicate: PredDegree},
			{Predicate: PredAssociatedGene, LinkedClass: ClassGene},
			{Predicate: PredPossibleDrug, LinkedClass: ClassDrug},
		}},
		{ClassGene, DSDiseasome, []catalog.PredicateDesc{
			{Predicate: PredGeneLabel}, {Predicate: PredGeneChromosome}, {Predicate: PredGeneLength},
		}},
		{ClassProbeset, DSAffymetrix, []catalog.PredicateDesc{
			{Predicate: PredProbesetName}, {Predicate: PredSpecies}, {Predicate: PredProbeChromosome},
			{Predicate: PredSignal}, {Predicate: PredTranscribedFrom, LinkedClass: ClassGene},
		}},
		{ClassDrug, DSDrugBank, []catalog.PredicateDesc{
			{Predicate: PredGenericName}, {Predicate: PredIndication}, {Predicate: PredDrugCategory},
			{Predicate: PredMolWeight}, {Predicate: PredTarget, LinkedClass: ClassTarget},
		}},
		{ClassTarget, DSDrugBank, []catalog.PredicateDesc{
			{Predicate: PredTargetName}, {Predicate: PredTargetGene, LinkedClass: ClassGene},
		}},
		{ClassPatient, DSTCGA, []catalog.PredicateDesc{
			{Predicate: PredGender}, {Predicate: PredAge}, {Predicate: PredTumorSite},
			{Predicate: PredMutatedGene, LinkedClass: ClassGene},
		}},
		{ClassCompound, DSKEGG, []catalog.PredicateDesc{
			{Predicate: PredFormula}, {Predicate: PredPathway}, {Predicate: PredMass},
		}},
		{ClassChemEntity, DSChEBI, []catalog.PredicateDesc{
			{Predicate: PredChebiName}, {Predicate: PredCharge}, {Predicate: PredChebiMass},
		}},
		{ClassSideEffect, DSSider, []catalog.PredicateDesc{
			{Predicate: PredEffectName}, {Predicate: PredCausedBy, LinkedClass: ClassDrug},
		}},
		{ClassTrial, DSLinkedCT, []catalog.PredicateDesc{
			{Predicate: PredTrialTitle}, {Predicate: PredPhase}, {Predicate: PredStatus},
			{Predicate: PredCondition, LinkedClass: ClassDisease},
			{Predicate: PredIntervention, LinkedClass: ClassDrug},
		}},
		{ClassProvider, DSMedicare, []catalog.PredicateDesc{
			{Predicate: PredProviderName}, {Predicate: PredState}, {Predicate: PredSpecialty},
			{Predicate: PredPrescribes, LinkedClass: ClassDrug},
		}},
		{ClassAssociation, DSPharmGKB, []catalog.PredicateDesc{
			{Predicate: PredEvidence}, {Predicate: PredScore},
			{Predicate: PredPAGene, LinkedClass: ClassGene},
			{Predicate: PredPADrug, LinkedClass: ClassDrug},
		}},
	}
}

// BuildLake generates the data and assembles the paper's experimental
// setup: every dataset stored relationally (the RDF version of each LSLOD
// dataset transformed into 3NF tables with rule-filtered indexes).
func BuildLake(scale Scale, seed int64) (*Lake, error) {
	return buildLake(scale, seed, nil, nil)
}

// BuildLakeCustom assembles the standard lake and then hands the builder
// to customize before Build — the hook ontario-server uses to register
// remote peer endpoints next to the local datasets.
func BuildLakeCustom(scale Scale, seed int64, customize func(*lake.Builder)) (*Lake, error) {
	return buildLake(scale, seed, nil, customize)
}

// BuildMixedLake keeps the named datasets in their native RDF model and the
// rest relational, exercising the Semantic-Data-Lake heterogeneity the
// system is designed for.
func BuildMixedLake(scale Scale, seed int64, rdfDatasets []string) (*Lake, error) {
	asRDF := map[string]bool{}
	for _, ds := range rdfDatasets {
		valid := false
		for _, known := range Datasets() {
			if ds == known {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("lslod: unknown dataset %q", ds)
		}
		asRDF[ds] = true
	}
	return buildLake(scale, seed, asRDF, nil)
}

func buildLake(scale Scale, seed int64, asRDF map[string]bool, customize func(*lake.Builder)) (*Lake, error) {
	data := Generate(scale, seed)
	specs, denied := relationalSpecs(data)
	return assembleLake(data, specs, denied, asRDF, customize)
}

// assembleLake drives the public lake builder: relational datasets apply
// their table and mapping specs, RDF datasets register the materialized
// graph, and the paper's molecule templates are declared explicitly (the
// builder's automatic derivation merges in behind them).
func assembleLake(data *Data, specs map[string]*datasetSpec, denied []string, asRDF map[string]bool, customize func(*lake.Builder)) (*Lake, error) {
	b := lake.NewBuilder()

	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if asRDF[id] {
			triples, err := specTriples(specs[id])
			if err != nil {
				return nil, err
			}
			b.AddGraph(id, triples)
			continue
		}
		specs[id].apply(b)
	}
	for _, spec := range moleculeSpecs() {
		m := lake.Molecule{Class: spec.class, Sources: []string{spec.dataset}}
		for _, pd := range spec.preds {
			m.Predicates = append(m.Predicates, lake.Predicate{IRI: pd.Predicate, LinkedClass: pd.LinkedClass})
		}
		b.AddMolecule(m)
	}
	if customize != nil {
		customize(b)
	}
	l, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Lake{Lake: l, Catalog: bridge.LakeCatalog(l), Data: data, DeniedIndexes: denied}, nil
}

// specTriples materializes the RDF view of one relational dataset spec: it
// builds the dataset alone through the public builder and exports the
// resulting tables through their class mappings.
func specTriples(spec *datasetSpec) ([]lake.Triple, error) {
	tb := lake.NewBuilder()
	spec.apply(tb)
	tl, err := tb.Build()
	if err != nil {
		return nil, err
	}
	src := bridge.LakeCatalog(tl).Source(spec.id)
	g, err := GraphFromSource(src)
	if err != nil {
		return nil, err
	}
	triples := g.Triples()
	out := make([]lake.Triple, len(triples))
	for i, t := range triples {
		out[i] = lake.Triple{S: lakeTerm(t.S), P: lakeTerm(t.P), O: lakeTerm(t.O)}
	}
	return out, nil
}

func lakeTerm(t rdf.Term) lake.Term {
	return lake.Term{Kind: lake.TermKind(t.Kind), Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
}
