// Package server exposes one shared ontario.Engine as a concurrent SPARQL
// Protocol-style HTTP endpoint. It contributes the serving layer the
// single-shot CLI lacks:
//
//   - admission control: a configurable maximum of concurrently executing
//     queries plus a bounded wait queue; requests beyond both get 503 with
//     a Retry-After hint instead of piling onto the engine;
//   - per-source backpressure: combined with ontario.WithSourceLimit, a
//     burst of bind-join blocks from many queries queues at each source's
//     semaphore instead of stampeding it;
//   - streaming results: answers are written as application/sparql-results+json
//     while the executor produces them, so the first solution is on the
//     wire at time-to-first-answer, not at query completion;
//   - cancellation: every query runs under the request context with a
//     per-query deadline; a client disconnect tears the whole plan down
//     through context.Context;
//   - plan caching: an LRU keyed by normalized query text, the
//     plan-shaping request parameters, and a coarse bucketing of each
//     remote source's measured latency — a repeated query skips parsing
//     and planning entirely (hits/misses exported on /metrics), but a
//     material drift in a source's observed health re-plans instead of
//     serving the stale plan forever;
//   - EXPLAIN: ?explain=1 renders the (cached) plan with the cost model's
//     estimates instead of executing it;
//   - observability: /metrics exports the counters and latency histograms
//     recorded through internal/trace in Prometheus text format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/buildinfo"
	"ontario/internal/trace"
)

// Metric names exported on /metrics.
const (
	MetricQueries       = "ontario_queries_total"
	MetricRejected      = "ontario_queries_rejected_total"
	MetricQueueTimeout  = "ontario_queries_queue_timeout_total"
	MetricFailed        = "ontario_queries_failed_total"
	MetricAnswers       = "ontario_answers_total"
	MetricMessages      = "ontario_messages_total"
	MetricQueryDuration = "ontario_query_duration_ms"
	MetricTTFA          = "ontario_time_to_first_answer_ms"
	MetricSourceDelay   = "ontario_source_delay_ms"
	MetricPlanCacheHits = "ontario_plan_cache_hits_total"
	MetricPlanCacheMiss = "ontario_plan_cache_misses_total"
	// MetricOperatorTime is the per-operator wall-time histogram, labeled
	// op=<operator kind> ("service", "hash-join", "bind-join", ...).
	MetricOperatorTime = "ontario_operator_time_ms"
	// MetricCardError is the estimate-vs-actual cardinality error
	// histogram: |log10((actual+1)/(estimated+1))| per cost-estimated plan
	// node, so 1.0 means the estimate was an order of magnitude off — the
	// divergence signal adaptive re-optimization keys on.
	MetricCardError = "ontario_cardinality_error_log10"
)

// cardErrorBuckets buckets the cardinality error histogram in log10 units
// (0.3 ≈ 2x off, 1 = 10x off, 2 = 100x off).
var cardErrorBuckets = []float64{0.1, 0.3, 0.5, 1, 1.5, 2, 3, 4}

// Config parameterizes the serving layer.
type Config struct {
	// MaxConcurrent is the maximum number of queries executing at once
	// (default 4).
	MaxConcurrent int
	// QueueDepth is the maximum number of admitted queries waiting for an
	// execution slot; a request arriving when the queue is full is rejected
	// with 503 (default 16; negative disables queueing entirely).
	QueueDepth int
	// QueryTimeout is the per-query deadline; a request may lower it with
	// the timeout form parameter but never raise it (default 30s).
	QueryTimeout time.Duration
	// RetryAfter is the hint returned in the Retry-After header of 503
	// responses (default 1s).
	RetryAfter time.Duration
	// PlanCacheSize bounds the server's LRU plan cache: repeated queries
	// (same normalized text, same plan-shaping parameters) skip parsing and
	// planning (default 128; negative disables caching).
	PlanCacheSize int
	// DefaultOptions are applied to every query before the per-request
	// mode/network parameters.
	DefaultOptions []ontario.Option
	// SlowQueryLogSize bounds the ring buffer behind /debug/queries, which
	// records every completed query with its plan, actuals and per-source
	// health (default 128; negative disables the log).
	SlowQueryLogSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger, when non-nil, receives one structured access-log line per
	// /sparql request, correlated with the query ID from the tracing
	// layer.
	Logger *slog.Logger
	// ClusterStatus, when non-nil, reports the coordinator's worker-pool
	// state; /healthz embeds it and /metrics renders per-worker gauge
	// families from it. The server stays ignorant of the cluster
	// transport — cmd/ontario-server wires the closure.
	ClusterStatus func() []WorkerStatus
}

// WorkerStatus is one cluster worker's health as the serving layer
// reports it (a transport-free mirror of the cluster client's view).
type WorkerStatus struct {
	Addr            string `json:"addr"`
	Up              bool   `json:"up"`
	Breaker         string `json:"breaker,omitempty"`
	Err             string `json:"err,omitempty"`
	Partition       int    `json:"partition"`
	Of              int    `json:"of"`
	Scheme          string `json:"scheme,omitempty"`
	Epoch           int64  `json:"epoch,omitempty"`
	ActiveFragments int64  `json:"active_fragments"`
	QueuedFragments int64  `json:"queued_fragments"`
	BatchesIn       int64  `json:"batches_in"`
	BatchesOut      int64  `json:"batches_out"`
	BytesIn         int64  `json:"bytes_in"`
	BytesOut        int64  `json:"bytes_out"`
	DictDeltaBytes  int64  `json:"dict_delta_bytes"`
	// RemapEntries is the current size of the persistent link's remap
	// table (how many distinct terms have crossed this link), not a
	// cumulative per-task sum.
	RemapEntries int64 `json:"remap_entries"`
	Reconnects   int64 `json:"reconnects"`
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.SlowQueryLogSize == 0 {
		c.SlowQueryLogSize = 128
	}
	return c
}

// Stats is a snapshot of the admission state.
type Stats struct {
	// Executing is the number of queries currently running.
	Executing int
	// PeakExecuting is the highest number of simultaneously running
	// queries observed.
	PeakExecuting int
	// Waiting is the number of admitted queries waiting for a slot.
	Waiting int
}

// Server is the HTTP serving layer over one shared engine.
type Server struct {
	eng     *ontario.Engine
	cfg     Config
	metrics *trace.Metrics
	mux     *http.ServeMux
	admit   chan struct{}
	plans   *planCache // nil when caching is disabled
	slow    *slowLog   // nil when the slow-query log is disabled
	started time.Time

	mu            sync.Mutex
	waiting       int
	executing     int
	peakExecuting int
}

// New returns a server over the engine. The engine must be shared — that
// is the point: all queries run on one engine, bounded by this server's
// admission control and the engine's per-source limits.
func New(eng *ontario.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		metrics: trace.NewMetrics(),
		mux:     http.NewServeMux(),
		admit:   make(chan struct{}, cfg.MaxConcurrent),
		plans:   newPlanCache(cfg.PlanCacheSize),
		slow:    newSlowLog(cfg.SlowQueryLogSize),
		started: time.Now(),
	}
	s.mux.HandleFunc("/sparql", s.handleSparql)
	s.mux.HandleFunc("/molecules", s.handleMolecules)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// engine returns the engine currently serving queries. Handlers capture
// it once per request so a concurrent SetEngine cannot split one request
// across two engines.
func (s *Server) engine() *ontario.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// SetEngine atomically replaces the serving engine — ontario-server uses
// this when deferred peer discovery completes and the lake is rebuilt
// with remote sources. The plan cache is dropped (its prepared plans
// belong to the old engine); in-flight queries finish on the engine they
// started with.
func (s *Server) SetEngine(eng *ontario.Engine) {
	s.mu.Lock()
	s.eng = eng
	s.mu.Unlock()
	s.plans.clear()
}

// Metrics exposes the server's metric registry.
func (s *Server) Metrics() *trace.Metrics { return s.metrics }

// Stats returns a snapshot of the admission state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Executing: s.executing, PeakExecuting: s.peakExecuting, Waiting: s.waiting}
}

// errSaturated reports a full execution pool and wait queue.
var errSaturated = fmt.Errorf("server saturated: query queue full")

// acquire admits one query: it returns a release function when a slot was
// obtained, errSaturated when the server is at capacity (execution slots
// busy and wait queue full), or the context's error when the deadline
// expired or the client went away while queueing.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	grabbed := func() func() {
		s.mu.Lock()
		s.executing++
		if s.executing > s.peakExecuting {
			s.peakExecuting = s.executing
		}
		s.mu.Unlock()
		return func() {
			s.mu.Lock()
			s.executing--
			s.mu.Unlock()
			<-s.admit
		}
	}
	// Fast path: free execution slot.
	select {
	case s.admit <- struct{}{}:
		return grabbed(), nil
	default:
	}
	// Queue if there is room.
	s.mu.Lock()
	if s.waiting >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, errSaturated
	}
	s.waiting++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
	}()
	select {
	case s.admit <- struct{}{}:
		return grabbed(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queryText extracts the SPARQL query per the SPARQL Protocol: GET with a
// query parameter, POST with application/sparql-query (raw body), or POST
// with form-encoded query=.
func queryText(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.TrimSpace(ct) {
		case "application/sparql-query", "text/plain", "":
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return "", err
			}
			if len(body) == 0 {
				return "", fmt.Errorf("empty request body")
			}
			return string(body), nil
		case "application/x-www-form-urlencoded":
			if err := r.ParseForm(); err != nil {
				return "", err
			}
			q := r.PostForm.Get("query")
			if q == "" {
				return "", fmt.Errorf("missing query form parameter")
			}
			return q, nil
		default:
			return "", fmt.Errorf("unsupported content type %q", ct)
		}
	default:
		// Unreachable from handleSparql, which rejects other methods with
		// 405 before calling here.
		return "", fmt.Errorf("method %s not allowed", r.Method)
	}
}

// qparam returns a request parameter from the URL query or — for
// form-encoded POSTs, whose body queryText has already parsed — the POST
// form. The SPARQL Protocol sends everything in the form body on POST, so
// parameters must not silently vanish there; the URL wins when both are
// set.
func qparam(r *http.Request, name string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return r.PostForm.Get(name)
}

// requestOptions derives the per-query options: the server defaults, then
// the request's mode/network/optimizer parameters. The second return value
// is the plan-shaping fingerprint of the request, part of the plan-cache
// key.
func (s *Server) requestOptions(r *http.Request) ([]ontario.Option, string, error) {
	opts := append([]ontario.Option(nil), s.cfg.DefaultOptions...)
	mode := qparam(r, "mode")
	switch mode {
	case "":
	case "aware":
		opts = append(opts, ontario.WithAwarePlan())
	case "unaware":
		opts = append(opts, ontario.WithUnawarePlan())
	default:
		return nil, "", fmt.Errorf("unknown mode %q (want aware or unaware)", mode)
	}
	// The fingerprint uses the RESOLVED parameter values (profile name,
	// canonical optimizer name), so accepted aliases of the same setting
	// ("nodelay"/"none", "Cost"/"cost") share one cache entry; the empty
	// string means "server default", distinct from any explicit value.
	network := ""
	if net := qparam(r, "network"); net != "" {
		profile, err := ontario.ProfileByName(net)
		if err != nil {
			return nil, "", err
		}
		opts = append(opts, ontario.WithNetwork(profile))
		network = profile.Name
	}
	optimizer := ""
	if opt := qparam(r, "optimizer"); opt != "" {
		m, err := ontario.OptimizerByName(opt)
		if err != nil {
			return nil, "", err
		}
		opts = append(opts, ontario.WithOptimizer(m))
		optimizer = m.String()
	}
	return opts, "mode=" + mode + "|network=" + network + "|optimizer=" + optimizer, nil
}

// prepare resolves the request's plan through the LRU plan cache: a hit
// skips parsing and planning and bumps the hit counter; a miss plans and
// stores. The key folds in the engine's measured per-source latency
// (coarsely bucketed), so a plan optimized with live cost-model gamma is
// re-planned when a source's observed health drifts materially instead
// of being served stale forever.
func (s *Server) prepare(eng *ontario.Engine, text, fingerprint string, opts []ontario.Option) (prep *ontario.Prepared, cacheHit bool, err error) {
	key := normalizeQuery(text) + "|" + fingerprint + latencyFingerprint(eng.SourceHealth())
	if prep := s.plans.get(key); prep != nil {
		s.metrics.Inc(MetricPlanCacheHits)
		return prep, true, nil
	}
	prep, err = eng.Prepare(text, opts...)
	if err != nil {
		return nil, false, err
	}
	s.metrics.Inc(MetricPlanCacheMiss)
	s.plans.put(key, prep)
	return prep, false, nil
}

// latencyFingerprint is the plan-cache key component derived from the
// engine's measured per-source health. Each observed source contributes
// its failure-inflated latency EWMA (the same quantity the cost model
// prices with, see wrapper.HealthRegistry.MeasuredLatency) bucketed to a
// power of two of milliseconds — coarse enough that sample jitter keeps
// one bucket, but a source drifting from 4ms to 40ms, or from healthy to
// 50% failures, changes the key and forces a re-plan. Engines without
// remote observations contribute nothing, keeping their keys unchanged.
func latencyFingerprint(health []ontario.SourceHealth) string {
	var b strings.Builder
	for _, h := range health {
		if h.Latency <= 0 {
			continue
		}
		ms := float64(h.Latency) / float64(time.Millisecond)
		rate := h.FailureRate
		if rate > 0.9 {
			rate = 0.9
		}
		ms /= 1 - rate
		bucket := 0
		for v := ms; v >= 1; v /= 2 {
			bucket++
		}
		fmt.Fprintf(&b, "|%s:%d", h.Source, bucket)
	}
	return b.String()
}

// queryDeadline resolves the effective per-query timeout: the server's
// QueryTimeout, lowered (never raised) by a timeout form parameter.
func (s *Server) queryDeadline(r *http.Request) time.Duration {
	d := s.cfg.QueryTimeout
	if t := qparam(r, "timeout"); t != "" {
		if req, err := time.ParseDuration(t); err == nil && req > 0 && req < d {
			d = req
		}
	}
	return d
}

func (s *Server) reject(w http.ResponseWriter) {
	s.metrics.Inc(MetricRejected)
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	http.Error(w, "server saturated: query queue full", http.StatusServiceUnavailable)
}

func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
		return
	}

	// Every request gets a trace identity up front — assigned fresh, or
	// adopted from an incoming W3C traceparent header when this node is a
	// federated hop of an upstream coordinator. The query ID goes out as a
	// response header immediately so even failed requests correlate.
	qt, ok := trace.ParseTraceparent(r.Header.Get("Traceparent"))
	if !ok {
		qt = trace.NewQueryTrace()
	}
	w.Header().Set("X-Ontario-Query-Id", qt.QueryID)

	accessLog := func(status int, extra ...any) {
		if s.cfg.Logger == nil {
			return
		}
		args := append([]any{
			slog.String("query_id", qt.QueryID),
			slog.String("trace_id", qt.TraceID),
			slog.String("method", r.Method),
			slog.Int("status", status),
			slog.Duration("duration", time.Since(started)),
		}, extra...)
		s.cfg.Logger.Info("sparql", args...)
	}

	text, err := queryText(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		accessLog(http.StatusBadRequest, slog.String("error", err.Error()))
		return
	}
	opts, fingerprint, err := s.requestOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		accessLog(http.StatusBadRequest, slog.String("error", err.Error()))
		return
	}

	eng := s.engine()

	// EXPLAIN: plan (through the cache) and render without executing — no
	// admission slot needed, planning is engine-local.
	if explain := qparam(r, "explain"); explain == "1" || explain == "true" {
		prep, cacheHit, err := s.prepare(eng, text, fingerprint, opts)
		if err != nil {
			s.metrics.Inc(MetricFailed)
			http.Error(w, err.Error(), http.StatusBadRequest)
			accessLog(http.StatusBadRequest, slog.String("error", err.Error()))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, prep.Explain())
		accessLog(http.StatusOK, slog.Bool("explain", true), slog.Bool("plan_cache_hit", cacheHit))
		return
	}
	wantAnalyze := qparam(r, "analyze") == "1" || qparam(r, "analyze") == "true"

	// The query context: cancelled by client disconnect (request context)
	// or the per-query deadline, and propagated into the executor and the
	// wrappers. The query trace rides along so the executor adopts this
	// request's identity and remote hops forward its traceparent.
	ctx, cancel := context.WithTimeout(r.Context(), s.queryDeadline(r))
	defer cancel()
	ctx = trace.WithQuery(ctx, qt)

	release, aerr := s.acquire(ctx)
	switch aerr {
	case nil:
	case errSaturated:
		s.reject(w)
		accessLog(http.StatusServiceUnavailable, slog.String("error", "saturated"))
		return
	default:
		// The deadline expired (or the client left) while the request was
		// queued — the server was queueable, not saturated, so this is a
		// timeout, not a rejection.
		s.metrics.Inc(MetricQueueTimeout)
		http.Error(w, "query deadline expired while waiting for an execution slot",
			http.StatusGatewayTimeout)
		accessLog(http.StatusGatewayTimeout, slog.String("error", "queue timeout"))
		return
	}
	defer release()

	prep, cacheHit, err := s.prepare(eng, text, fingerprint, opts)
	if err != nil {
		s.metrics.Inc(MetricFailed)
		http.Error(w, err.Error(), http.StatusBadRequest)
		accessLog(http.StatusBadRequest, slog.String("error", err.Error()))
		return
	}
	res, err := eng.QueryPrepared(ctx, prep, opts...)
	if err != nil {
		// The query was already parsed and planned — a failure here is the
		// execution's, not the client's, so 4xx would be a lie.
		s.metrics.Inc(MetricFailed)
		status := execStatus(err)
		http.Error(w, err.Error(), status)
		accessLog(status, slog.String("error", err.Error()))
		return
	}
	defer res.Close()
	s.metrics.Inc(MetricQueries)

	w.Header().Set("Content-Type", "application/sparql-results+json")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Trailer", "X-Ontario-Answers, X-Ontario-Messages, X-Ontario-TTFA-Ms, X-Ontario-Error, X-Ontario-Spans")
	w.WriteHeader(http.StatusOK)

	enc := newResultsEncoder(w, res.Vars())
	flusher, _ := w.(http.Flusher)
	writeOK := enc.writeHead() == nil
	if writeOK && flusher != nil {
		flusher.Flush()
	}

	// Solutions are pulled and written one exchange batch at a time (via
	// the internal bridge — the exported cursor API stays per-binding):
	// one Write and one Flush per batch instead of per solution. The
	// cursor pre-encodes the batch (ResultsNextJSON) so terms are
	// materialized from dictionary IDs straight into the response bytes,
	// each distinct term marshaled once per query; the per-Binding batch
	// hook remains as the fallback.
	answers := 0
	flushedAnswers := false
	for {
		var batchLen int
		if bridge.ResultsNextJSON != nil {
			payload, n, ok := bridge.ResultsNextJSON(res)
			if !ok {
				break
			}
			batchLen = n
			if answers == 0 && n > 0 {
				s.metrics.Observe(MetricTTFA, res.Stats().TimeToFirstAnswer)
			}
			answers += n
			if writeOK {
				if enc.writeRaw(payload, n) != nil {
					// The connection is gone (or broken): stop writing but
					// keep draining; cancellation closes the cursor promptly.
					writeOK = false
					cancel()
					continue
				}
			}
		} else {
			raw, ok := bridge.ResultsNextBatch(res)
			if !ok {
				break
			}
			batch := raw.([]ontario.Binding)
			batchLen = len(batch)
			if answers == 0 && len(batch) > 0 {
				s.metrics.Observe(MetricTTFA, res.Stats().TimeToFirstAnswer)
			}
			answers += len(batch)
			if writeOK {
				if enc.writeBatch(batch) != nil {
					writeOK = false
					cancel()
					continue
				}
			}
		}
		if writeOK && batchLen > 0 && !flushedAnswers && flusher != nil {
			// Push the first solutions to the client immediately — the
			// time-to-first-answer clients measure is real. Later batches
			// ride the response's own chunk buffer: one write syscall per
			// buffer fill instead of one per exchange batch.
			flusher.Flush()
			flushedAnswers = true
		}
	}
	analysis := res.Analyze()
	// A failure after the 200 went out (a source died mid-query, the
	// deadline expired mid-stream) can only be signalled in-band: the
	// X-Ontario-Error trailer names it and the JSON document is left
	// unterminated, so strict clients see a truncated body rather than a
	// silently-short result set.
	execErr := res.Err()
	if execErr != nil {
		s.metrics.Inc(MetricFailed)
		w.Header().Set("X-Ontario-Error",
			strings.ReplaceAll(strings.ReplaceAll(execErr.Error(), "\n", " "), "\r", " "))
	} else if writeOK {
		if wantAnalyze {
			_ = enc.writeAnalyzeTail(analysis)
		} else {
			_ = enc.writeTail()
		}
	}
	// The spans this node fanned out (with their nested children) return
	// to a federating caller in a trailer, so a coordinator sees the whole
	// tree; sent on failures too — a broken hop is exactly what the
	// coordinator wants to see.
	if spans := qt.RemoteSpans(); len(spans) > 0 {
		if doc, err := json.Marshal(spans); err == nil {
			w.Header().Set("X-Ontario-Spans", string(doc))
		}
	}
	st := res.Stats()

	s.metrics.Add(MetricAnswers, int64(st.Answers))
	s.metrics.Add(MetricMessages, int64(st.Messages))
	s.metrics.Observe(MetricQueryDuration, st.Duration)
	for src, d := range st.SourceDelays {
		s.metrics.ObserveSource(MetricSourceDelay, src, d)
	}
	s.recordAnalysis(analysis)

	w.Header().Set("X-Ontario-Answers", fmt.Sprintf("%d", st.Answers))
	w.Header().Set("X-Ontario-Messages", fmt.Sprintf("%d", st.Messages))
	w.Header().Set("X-Ontario-TTFA-Ms", fmt.Sprintf("%.3f", float64(st.TimeToFirstAnswer)/float64(time.Millisecond)))

	status := http.StatusOK
	rec := QueryRecord{
		QueryID:    qt.QueryID,
		TraceID:    qt.TraceID,
		When:       started,
		Query:      text,
		Status:     status,
		Answers:    st.Answers,
		Messages:   st.Messages,
		DurationMS: float64(st.Duration) / float64(time.Millisecond),
		TTFAMS:     float64(st.TimeToFirstAnswer) / float64(time.Millisecond),
		Analysis:   analysis,
		Sources:    eng.SourceHealth(),
	}
	if execErr != nil {
		rec.Error = execErr.Error()
	}
	s.slow.add(rec)

	logArgs := []any{
		slog.Int("answers", st.Answers),
		slog.Int("messages", st.Messages),
		slog.Bool("plan_cache_hit", cacheHit),
	}
	if execErr != nil {
		logArgs = append(logArgs, slog.String("error", execErr.Error()))
	}
	accessLog(status, logArgs...)
}

// recordAnalysis folds one execution's actuals into the metric families:
// per-operator wall time, and — for every cost-estimated plan node — the
// estimate-vs-actual cardinality error in orders of magnitude.
func (s *Server) recordAnalysis(a *ontario.Analysis) {
	if a == nil || a.Plan == nil {
		return
	}
	var walk func(n *ontario.PlanSummary)
	walk = func(n *ontario.PlanSummary) {
		if n.Actual != nil {
			s.metrics.ObserveLabeled(MetricOperatorTime, "op", n.Actual.Kind, n.Actual.Wall)
			if n.Estimate != nil {
				err := math.Abs(math.Log10((float64(n.Actual.BindingsOut) + 1) / (n.Estimate.Cardinality + 1)))
				s.metrics.ObserveValue(MetricCardError, "", "", err, cardErrorBuckets)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(a.Plan)
	for _, m := range a.Modifiers {
		s.metrics.ObserveLabeled(MetricOperatorTime, "op", m.Kind, m.Wall)
	}
}

// execStatus maps an execution failure to an HTTP status: 504 when the
// query deadline expired, 500 otherwise. 400 is reserved for parse and
// parameter errors, which are decided before execution starts.
func execStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handleMolecules advertises the lake's molecule templates so peer
// ontario-server nodes can federate over this one (lake.DiscoverMolecules
// consumes this document).
func (s *Server) handleMolecules(w http.ResponseWriter, r *http.Request) {
	type predDoc struct {
		IRI         string `json:"iri"`
		LinkedClass string `json:"linked_class,omitempty"`
	}
	type molDoc struct {
		Class      string    `json:"class"`
		Predicates []predDoc `json:"predicates"`
		Sources    []string  `json:"sources,omitempty"`
	}
	mols := s.engine().Molecules()
	docs := make([]molDoc, 0, len(mols))
	for _, m := range mols {
		d := molDoc{Class: m.Class, Sources: m.Sources, Predicates: make([]predDoc, 0, len(m.Predicates))}
		for _, p := range m.Predicates {
			d.Predicates = append(d.Predicates, predDoc{IRI: p.IRI, LinkedClass: p.LinkedClass})
		}
		docs = append(docs, d)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(docs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.Stats()
	eng := s.engine()
	fmt.Fprintf(w, "# TYPE ontario_executing_queries gauge\nontario_executing_queries %d\n", st.Executing)
	fmt.Fprintf(w, "# TYPE ontario_waiting_queries gauge\nontario_waiting_queries %d\n", st.Waiting)
	fmt.Fprintf(w, "# TYPE ontario_peak_executing_queries gauge\nontario_peak_executing_queries %d\n", st.PeakExecuting)
	if lim := eng.SourceLimits(); lim != nil {
		sources := lim.Sources()
		sort.Strings(sources)
		fmt.Fprintf(w, "# TYPE ontario_source_inflight gauge\n")
		for _, src := range sources {
			fmt.Fprintf(w, "ontario_source_inflight{source=%q} %d\n", src, lim.InFlight(src))
		}
		fmt.Fprintf(w, "# TYPE ontario_source_inflight_peak gauge\n")
		for _, src := range sources {
			fmt.Fprintf(w, "ontario_source_inflight_peak{source=%q} %d\n", src, lim.Peak(src))
		}
	}
	if health := eng.SourceHealth(); len(health) > 0 {
		fmt.Fprintf(w, "# TYPE ontario_source_breaker_open gauge\n")
		for _, h := range health {
			open := 0
			if h.State != "closed" {
				open = 1
			}
			fmt.Fprintf(w, "ontario_source_breaker_open{source=%q,state=%q} %d\n", h.Source, h.State, open)
		}
		fmt.Fprintf(w, "# TYPE ontario_source_requests_total counter\n")
		for _, h := range health {
			fmt.Fprintf(w, "ontario_source_requests_total{source=%q} %d\n", h.Source, h.Requests)
		}
		fmt.Fprintf(w, "# TYPE ontario_source_failures_total counter\n")
		for _, h := range health {
			fmt.Fprintf(w, "ontario_source_failures_total{source=%q} %d\n", h.Source, h.Failures)
		}
		fmt.Fprintf(w, "# TYPE ontario_source_retries_total counter\n")
		for _, h := range health {
			fmt.Fprintf(w, "ontario_source_retries_total{source=%q} %d\n", h.Source, h.Retries)
		}
		fmt.Fprintf(w, "# TYPE ontario_source_failure_rate gauge\n")
		for _, h := range health {
			fmt.Fprintf(w, "ontario_source_failure_rate{source=%q} %g\n", h.Source, h.FailureRate)
		}
		fmt.Fprintf(w, "# TYPE ontario_source_latency_ms gauge\n")
		for _, h := range health {
			fmt.Fprintf(w, "ontario_source_latency_ms{source=%q} %.3f\n",
				h.Source, float64(h.Latency)/float64(time.Millisecond))
		}
	}
	if s.cfg.ClusterStatus != nil {
		if workers := s.cfg.ClusterStatus(); len(workers) > 0 {
			writeGauge := func(name string, val func(ws WorkerStatus) int64) {
				fmt.Fprintf(w, "# TYPE %s gauge\n", name)
				for _, ws := range workers {
					fmt.Fprintf(w, "%s{worker=%q} %d\n", name, ws.Addr, val(ws))
				}
			}
			writeGauge("ontario_cluster_worker_up", func(ws WorkerStatus) int64 {
				if ws.Up {
					return 1
				}
				return 0
			})
			writeGauge("ontario_cluster_fragment_queue_depth", func(ws WorkerStatus) int64 { return ws.QueuedFragments })
			writeGauge("ontario_cluster_active_fragments", func(ws WorkerStatus) int64 { return ws.ActiveFragments })
			// Current size of each persistent link's remap table — a
			// per-link gauge, not a per-task cumulative sum.
			writeGauge("ontario_cluster_remap_entries", func(ws WorkerStatus) int64 { return ws.RemapEntries })
			writeGauge("ontario_cluster_dict_delta_bytes", func(ws WorkerStatus) int64 { return ws.DictDeltaBytes })
			fmt.Fprintf(w, "# TYPE ontario_cluster_link_reconnects_total counter\n")
			for _, ws := range workers {
				fmt.Fprintf(w, "ontario_cluster_link_reconnects_total{worker=%q} %d\n", ws.Addr, ws.Reconnects)
			}
			fmt.Fprintf(w, "# TYPE ontario_cluster_shuffled_batches gauge\n")
			for _, ws := range workers {
				fmt.Fprintf(w, "ontario_cluster_shuffled_batches{worker=%q,direction=\"in\"} %d\n", ws.Addr, ws.BatchesIn)
				fmt.Fprintf(w, "ontario_cluster_shuffled_batches{worker=%q,direction=\"out\"} %d\n", ws.Addr, ws.BatchesOut)
			}
			fmt.Fprintf(w, "# TYPE ontario_cluster_shuffled_bytes gauge\n")
			for _, ws := range workers {
				fmt.Fprintf(w, "ontario_cluster_shuffled_bytes{worker=%q,direction=\"in\"} %d\n", ws.Addr, ws.BytesIn)
				fmt.Fprintf(w, "ontario_cluster_shuffled_bytes{worker=%q,direction=\"out\"} %d\n", ws.Addr, ws.BytesOut)
			}
		}
	}
	_ = s.metrics.WritePrometheus(w)
}

// handleHealthz reports liveness plus the operational identity of the
// node: build info, uptime, and the engine's headline counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, commit := buildinfo.Info()
	st := s.Stats()
	doc := struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		Commit        string  `json:"commit,omitempty"`
		GoVersion     string  `json:"go_version,omitempty"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Queries       int64   `json:"queries_total"`
		Failed        int64   `json:"queries_failed_total"`
		Rejected      int64   `json:"queries_rejected_total"`
		Answers       int64   `json:"answers_total"`
		Executing     int     `json:"executing"`
		Waiting       int     `json:"waiting"`
		PeakExecuting int     `json:"peak_executing"`

		Cluster []WorkerStatus `json:"cluster,omitempty"`
	}{
		Status:        "ok",
		Version:       version,
		Commit:        commit,
		GoVersion:     buildinfo.GoVersion(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queries:       s.metrics.Counter(MetricQueries),
		Failed:        s.metrics.Counter(MetricFailed),
		Rejected:      s.metrics.Counter(MetricRejected),
		Answers:       s.metrics.Counter(MetricAnswers),
		Executing:     st.Executing,
		Waiting:       st.Waiting,
		PeakExecuting: st.PeakExecuting,
	}
	if s.cfg.ClusterStatus != nil {
		doc.Cluster = s.cfg.ClusterStatus()
		for _, ws := range doc.Cluster {
			if !ws.Up {
				doc.Status = "degraded"
				break
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// handleDebugQueries serves the slow-query log: the most recent completed
// queries (text, trace identity, plan with actuals, per-source health),
// most recent first, filtered to those at least as slow as the optional
// threshold parameter (a Go duration, e.g. ?threshold=250ms).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if s.slow == nil {
		http.Error(w, "slow-query log disabled", http.StatusNotFound)
		return
	}
	var threshold time.Duration
	if t := r.URL.Query().Get("threshold"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad threshold %q: %v", t, err), http.StatusBadRequest)
			return
		}
		threshold = d
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.slow.slower(threshold))
}
