package server

import (
	"encoding/json"
	"io"

	"ontario"
)

// resultsEncoder writes the SPARQL 1.1 Query Results JSON Format
// (application/sparql-results+json) incrementally: the head and the
// opening of the bindings array go out first, then one binding object per
// solution as it arrives, then the closing braces — so a consumer parsing
// the stream sees the first solution long before the query finishes.
type resultsEncoder struct {
	w     io.Writer
	vars  []string
	wrote int
}

func newResultsEncoder(w io.Writer, vars []string) *resultsEncoder {
	if vars == nil {
		vars = []string{}
	}
	return &resultsEncoder{w: w, vars: vars}
}

func (e *resultsEncoder) writeHead() error {
	head, err := json.Marshal(e.vars)
	if err != nil {
		return err
	}
	_, err = e.w.Write(append(append([]byte(`{"head":{"vars":`), head...),
		[]byte(`},"results":{"bindings":[`)...))
	return err
}

// jsonTerm is one RDF term in the results-JSON encoding.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func encodeTerm(t ontario.Term) jsonTerm {
	switch t.Kind {
	case ontario.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case ontario.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

// writeBatch encodes a whole exchange batch of solutions as one Write to
// the underlying connection: the per-answer syscall and flush of the
// binding-at-a-time writer are amortized over the batch, while the
// batch-boundary flush in the handler keeps the first solutions streaming
// out at time-to-first-answer.
func (e *resultsEncoder) writeBatch(batch []ontario.Binding) error {
	if len(batch) == 0 {
		return nil
	}
	var payload []byte
	for _, b := range batch {
		obj := make(map[string]jsonTerm, len(b))
		for v, t := range b {
			obj[v] = encodeTerm(t)
		}
		one, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		if e.wrote > 0 {
			payload = append(payload, ',')
		}
		payload = append(payload, one...)
		e.wrote++
	}
	_, err := e.w.Write(payload)
	return err
}

// writeRaw writes a payload of n binding objects pre-encoded by the
// cursor (see bridge.ResultsNextJSON). The payload leads with a ','
// separator before its first object; it is dropped when nothing has been
// written yet, so the convention composes with writeBatch either way.
func (e *resultsEncoder) writeRaw(payload []byte, n int) error {
	if n == 0 || len(payload) == 0 {
		return nil
	}
	if e.wrote == 0 {
		payload = payload[1:]
	}
	e.wrote += n
	_, err := e.w.Write(payload)
	return err
}

func (e *resultsEncoder) writeTail() error {
	_, err := e.w.Write([]byte("]}}"))
	return err
}

// writeAnalyzeTail closes the document with the EXPLAIN ANALYZE report
// appended as a top-level "ontario:analyze" member after the results —
// the document stays valid JSON, and because the member follows the
// streamed bindings the streaming semantics survive (?analyze=1 costs
// nothing until the query is done).
func (e *resultsEncoder) writeAnalyzeTail(a *ontario.Analysis) error {
	doc, err := json.Marshal(a)
	if err != nil {
		// Fall back to the plain tail: a valid result document matters more
		// than the report.
		return e.writeTail()
	}
	payload := append([]byte(`]},"ontario:analyze":`), doc...)
	payload = append(payload, '}')
	_, err = e.w.Write(payload)
	return err
}
