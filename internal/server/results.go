package server

import (
	"encoding/json"
	"io"

	"ontario"
)

// resultsEncoder writes the SPARQL 1.1 Query Results JSON Format
// (application/sparql-results+json) incrementally: the head and the
// opening of the bindings array go out first, then one binding object per
// solution as it arrives, then the closing braces — so a consumer parsing
// the stream sees the first solution long before the query finishes.
type resultsEncoder struct {
	w     io.Writer
	vars  []string
	wrote int
}

func newResultsEncoder(w io.Writer, vars []string) *resultsEncoder {
	if vars == nil {
		vars = []string{}
	}
	return &resultsEncoder{w: w, vars: vars}
}

func (e *resultsEncoder) writeHead() error {
	head, err := json.Marshal(e.vars)
	if err != nil {
		return err
	}
	_, err = e.w.Write(append(append([]byte(`{"head":{"vars":`), head...),
		[]byte(`},"results":{"bindings":[`)...))
	return err
}

// jsonTerm is one RDF term in the results-JSON encoding.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func encodeTerm(t ontario.Term) jsonTerm {
	switch t.Kind {
	case ontario.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case ontario.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

func (e *resultsEncoder) writeBinding(b ontario.Binding) error {
	obj := make(map[string]jsonTerm, len(b))
	for v, t := range b {
		obj[v] = encodeTerm(t)
	}
	payload, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	if e.wrote > 0 {
		payload = append([]byte(","), payload...)
	}
	e.wrote++
	_, err = e.w.Write(payload)
	return err
}

func (e *resultsEncoder) writeTail() error {
	_, err := e.w.Write([]byte("]}}"))
	return err
}
