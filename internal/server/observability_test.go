package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"ontario"
	"ontario/internal/lslod"
	"ontario/internal/trace"
)

// analyzeDoc is the shape of a results document carrying the EXPLAIN
// ANALYZE member.
type analyzeDoc struct {
	Results struct {
		Bindings []json.RawMessage `json:"bindings"`
	} `json:"results"`
	Analyze *struct {
		QueryID string `json:"query_id"`
		TraceID string `json:"trace_id"`
		Plan    *struct {
			Operator string `json:"operator"`
			Actual   *struct {
				BindingsOut int64 `json:"bindings_out"`
				WallNS      int64 `json:"wall_ns"`
			} `json:"actual"`
			Children []json.RawMessage `json:"children"`
		} `json:"plan"`
		Modifiers []struct {
			Kind string `json:"kind"`
		} `json:"modifiers"`
	} `json:"ontario:analyze"`
}

// TestAnalyzeFramingStreamed: ?analyze=1 on the happy path appends the
// report as a top-level member after the streamed bindings — the document
// stays valid JSON, the result set is unchanged, and the report's
// identity matches the X-Ontario-Query-Id header.
func TestAnalyzeFramingStreamed(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, url.Values{"analyze": {"1"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	qid := resp.Header.Get("X-Ontario-Query-Id")
	if qid == "" {
		t.Fatal("X-Ontario-Query-Id header missing")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc analyzeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("analyze response is not valid JSON: %v\n%s", err, body)
	}
	if doc.Analyze == nil {
		t.Fatal("ontario:analyze member missing")
	}
	if doc.Analyze.QueryID != qid {
		t.Errorf("analyze query_id = %q, header = %q", doc.Analyze.QueryID, qid)
	}
	if len(doc.Analyze.TraceID) != 32 {
		t.Errorf("analyze trace_id = %q, want 32 hex chars", doc.Analyze.TraceID)
	}
	if doc.Analyze.Plan == nil || doc.Analyze.Plan.Actual == nil {
		t.Fatal("plan root lacks actuals")
	}
	if got := doc.Analyze.Plan.Actual.BindingsOut; got != int64(len(doc.Results.Bindings)) {
		t.Errorf("plan root emitted %d, streamed %d bindings", got, len(doc.Results.Bindings))
	}
	if doc.Analyze.Plan.Actual.WallNS <= 0 {
		t.Error("plan root wall time not measured")
	}
	if len(doc.Analyze.Modifiers) == 0 {
		t.Error("no solution-modifier actuals (expected at least project)")
	}
	if got := resp.Trailer.Get("X-Ontario-Error"); got != "" {
		t.Errorf("error trailer = %q on a successful query", got)
	}

	// Without the parameter the member must not appear.
	resp2 := postQuery(t, ts.URL, lslod.Queries()[0].Text, nil)
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), "ontario:analyze") {
		t.Error("analyze member present without ?analyze=1")
	}
	if !json.Valid(body2) {
		t.Error("plain response is not valid JSON")
	}
}

// TestAnalyzeFramingMidStreamError: when the deadline expires after the
// 200 went out, the document is left unterminated (strict clients see
// truncation, not a silently-short result), the X-Ontario-Error trailer
// names the failure, and no analyze member is appended.
func TestAnalyzeFramingMidStreamError(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1),
		},
	})

	resp := postQuery(t, ts.URL, lslod.Queries()[2].Text,
		url.Values{"analyze": {"1"}, "timeout": {"300ms"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (failure is post-header, in-band)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errTrailer := resp.Trailer.Get("X-Ontario-Error"); !strings.Contains(errTrailer, "deadline") {
		t.Errorf("error trailer = %q, want the deadline error", errTrailer)
	}
	if json.Valid(body) {
		t.Errorf("mid-stream failure produced a well-terminated document:\n%s", body)
	}
	if strings.Contains(string(body), "ontario:analyze") {
		t.Error("analyze member appended to a failed document")
	}
	if resp.Header.Get("X-Ontario-Query-Id") == "" {
		t.Error("query id header missing on the failure path")
	}
}

// TestAnalyzeFraming504: a request that dies in the admission queue never
// reaches streaming — plain 504 error body, no results framing, no
// analyze member, but still a query id for correlation.
func TestAnalyzeFraming504(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1),
		},
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postQuery(t, ts.URL, lslod.Queries()[2].Text, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Executing == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text,
		url.Values{"analyze": {"1"}, "timeout": {"50ms"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"results"`) || strings.Contains(string(body), "ontario:analyze") {
		t.Errorf("504 body carries results framing:\n%s", body)
	}
	if resp.Header.Get("X-Ontario-Query-Id") == "" {
		t.Error("query id header missing on 504")
	}
	<-done
}

// TestTraceparentAdoptionAndSlowLog: a caller-supplied W3C traceparent is
// adopted (same trace id, new span) and the completed query lands in
// /debug/queries with that trace id; the threshold filter is applied at
// read time.
func TestTraceparentAdoptionAndSlowLog(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		SlowQueryLogSize: 8,
		DefaultOptions:   []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})

	up := trace.NewQueryTrace()
	req, err := http.NewRequest("POST", ts.URL+"/sparql",
		strings.NewReader(lslod.Queries()[0].Text))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/sparql-query")
	req.Header.Set("Traceparent", up.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	qid := resp.Header.Get("X-Ontario-Query-Id")
	if qid == up.QueryID {
		t.Error("server reused the caller's span id instead of minting its own")
	}
	io.Copy(io.Discard, resp.Body)

	var recs []QueryRecord
	getJSON(t, ts.URL+"/debug/queries?threshold=0s", &recs)
	if len(recs) != 1 {
		t.Fatalf("slow log has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != up.TraceID {
		t.Errorf("slow log trace id = %q, want the caller's %q", rec.TraceID, up.TraceID)
	}
	if rec.QueryID != qid {
		t.Errorf("slow log query id = %q, header %q", rec.QueryID, qid)
	}
	if rec.Status != 200 || rec.Answers == 0 {
		t.Errorf("record = status %d, %d answers", rec.Status, rec.Answers)
	}
	if rec.Analysis == nil || rec.Analysis.Plan == nil || rec.Analysis.Plan.Actual == nil {
		t.Error("slow log record lacks the analyzed plan")
	}

	// An absurd threshold filters everything out.
	getJSON(t, ts.URL+"/debug/queries?threshold=1h", &recs)
	if len(recs) != 0 {
		t.Errorf("threshold=1h returned %d records, want 0", len(recs))
	}

	// A malformed threshold is a client error.
	resp2, err := http.Get(ts.URL + "/debug/queries?threshold=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus threshold got %d, want 400", resp2.StatusCode)
	}
}

// TestHealthzReportsBuildInfo: /healthz carries build identity, uptime
// and the engine counters.
func TestHealthzReportsBuildInfo(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})
	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var doc struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		GoVersion     string  `json:"go_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		QueriesTotal  int64   `json:"queries_total"`
	}
	getJSON(t, ts.URL+"/healthz", &doc)
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if doc.Version == "" {
		t.Error("version missing")
	}
	if !strings.HasPrefix(doc.GoVersion, "go") {
		t.Errorf("go_version = %q", doc.GoVersion)
	}
	if doc.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", doc.UptimeSeconds)
	}
	if doc.QueriesTotal != 1 {
		t.Errorf("queries_total = %d, want 1", doc.QueriesTotal)
	}
}

// TestPprofGatedByConfig: the pprof handlers are only mounted when
// EnablePprof is set.
func TestPprofGatedByConfig(t *testing.T) {
	_, tsOff, _ := newTestServer(t, Config{})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable without EnablePprof")
	}

	_, tsOn, _ := newTestServer(t, Config{EnablePprof: true})
	resp2, err := http.Get(tsOn.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline = %d with EnablePprof, want 200", resp2.StatusCode)
	}
}

// TestOperatorMetricsExposition: executing a query populates the
// per-operator wall-time and cardinality-error histogram families on
// /metrics.
func TestOperatorMetricsExposition(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})
	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	if !strings.Contains(text, MetricOperatorTime+`_count{op="service"}`) {
		t.Errorf("per-operator time family missing service series:\n%s", grepLines(text, MetricOperatorTime))
	}
	if !strings.Contains(text, MetricCardError+"_count") {
		t.Errorf("cardinality-error family missing:\n%s", grepLines(text, MetricCardError))
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

func grepLines(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
