package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

var (
	lakeOnce sync.Once
	testLake *lslod.Lake
	lakeErr  error
)

func getLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lakeOnce.Do(func() {
		testLake, lakeErr = lslod.BuildLake(lslod.SmallScale(), 7)
	})
	if lakeErr != nil {
		t.Fatal(lakeErr)
	}
	return testLake
}

// sparqlResults is the SPARQL results JSON document shape.
type sparqlResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type  string `json:"type"`
			Value string `json:"value"`
		} `json:"bindings"`
	} `json:"results"`
}

func newTestServer(t *testing.T, cfg Config, engOpts ...ontario.EngineOption) (*Server, *httptest.Server, *ontario.Engine) {
	t.Helper()
	eng := ontario.New(getLake(t).Lake, engOpts...)
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, eng
}

func postQuery(t *testing.T, baseURL, query string, params url.Values) *http.Response {
	t.Helper()
	u := baseURL + "/sparql"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := http.Post(u, "application/sparql-query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeQueryEndToEnd(t *testing.T) {
	srv, ts, eng := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})

	wantRes, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers, err := wantRes.Collect()
	if err != nil {
		t.Fatal(err)
	}

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %q", ct)
	}
	var doc sparqlResults
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if len(doc.Results.Bindings) != len(wantAnswers) {
		t.Errorf("got %d bindings, want %d", len(doc.Results.Bindings), len(wantAnswers))
	}
	if len(doc.Head.Vars) != len(wantRes.Vars()) {
		t.Errorf("head vars = %v, want %v", doc.Head.Vars, wantRes.Vars())
	}
	if got := resp.Trailer.Get("X-Ontario-Answers"); got != fmt.Sprintf("%d", len(wantAnswers)) {
		t.Errorf("answers trailer = %q, want %d", got, len(wantAnswers))
	}

	// Form-encoded POST and GET are also accepted.
	resp2, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {lslod.Queries()[0].Text}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("form POST status = %d", resp2.StatusCode)
	}
	io.Copy(io.Discard, resp2.Body)

	resp3, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(lslod.Queries()[0].Text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("GET status = %d", resp3.StatusCode)
	}
	io.Copy(io.Discard, resp3.Body)

	if got := srv.Metrics().Counter(MetricQueries); got != 3 {
		t.Errorf("queries counter = %d, want 3 (one per HTTP query)", got)
	}

	// Bad requests are 400, not 500.
	respBad := postQuery(t, ts.URL, "SELECT nonsense", nil)
	defer respBad.Body.Close()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d, want 400", respBad.StatusCode)
	}
}

// TestAdmissionRejectsWhenSaturated deterministically saturates a
// 1-slot/0-queue server with one slow query, then checks the next request
// is turned away with 503 + Retry-After.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    -1, // disable queueing: saturation is immediate
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1),
		},
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postQuery(t, ts.URL, lslod.Queries()[2].Text, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Executing == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	if srv.Metrics().Counter(MetricRejected) == 0 {
		t.Error("rejected counter not incremented")
	}
	<-done
}

// TestQueueDeadlineIsTimeoutNotRejection admits a request to a non-full
// queue and lets its deadline expire there: that is a 504 (and a
// queue-timeout metric), not a 503 "saturated" rejection.
func TestQueueDeadlineIsTimeoutNotRejection(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1),
		},
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postQuery(t, ts.URL, lslod.Queries()[2].Text, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Executing == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text, url.Values{"timeout": {"50ms"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("queued request whose deadline expired got %d, want 504", resp.StatusCode)
	}
	if srv.Metrics().Counter(MetricQueueTimeout) != 1 {
		t.Errorf("queue-timeout counter = %d, want 1", srv.Metrics().Counter(MetricQueueTimeout))
	}
	if srv.Metrics().Counter(MetricRejected) != 0 {
		t.Errorf("rejected counter = %d, want 0 (queue was not full)", srv.Metrics().Counter(MetricRejected))
	}
	<-done
}

// TestAdmissionUnderFlood drives K >> C concurrent clients and asserts the
// server never executes more than C queries at once, per-source in-flight
// limits hold, and the excess is either queued or rejected with 503.
func TestAdmissionUnderFlood(t *testing.T) {
	const (
		maxConcurrent = 2
		queueDepth    = 2
		sourceLimit   = 2
		clients       = 12
	)
	srv, ts, eng := newTestServer(t, Config{
		MaxConcurrent: maxConcurrent,
		QueueDepth:    queueDepth,
		DefaultOptions: []ontario.Option{
			ontario.WithAwarePlan(), ontario.WithNetwork(ontario.Gamma2), ontario.WithNetworkScale(0.3),
		},
	}, ontario.WithSourceLimit(sourceLimit))

	var wg sync.WaitGroup
	var mu sync.Mutex
	ok200, rejected := 0, 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := lslod.Queries()[i%len(lslod.Queries())]
			resp := postQuery(t, ts.URL, q.Text, nil)
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200++
			case http.StatusServiceUnavailable:
				rejected++
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	if st.PeakExecuting > maxConcurrent {
		t.Errorf("peak executing %d exceeds max-concurrent %d", st.PeakExecuting, maxConcurrent)
	}
	if st.Executing != 0 || st.Waiting != 0 {
		t.Errorf("leftover admission state: %+v", st)
	}
	if ok200+rejected != clients {
		t.Errorf("accounted %d of %d clients", ok200+rejected, clients)
	}
	if ok200 == 0 {
		t.Error("no query succeeded under flood")
	}
	if rejected == 0 {
		t.Errorf("12 clients against capacity %d (C=%d + queue %d) should see rejections",
			maxConcurrent+queueDepth, maxConcurrent, queueDepth)
	}
	lim := eng.SourceLimits()
	for _, src := range lim.Sources() {
		if p := lim.Peak(src); p > sourceLimit {
			t.Errorf("source %s peak in-flight %d exceeds limit %d", src, p, sourceLimit)
		}
		if lim.InFlight(src) != 0 {
			t.Errorf("source %s still has in-flight requests after flood", src)
		}
	}
}

// TestStreamingFirstAnswerBeforeCompletion reads the response
// incrementally and checks the first binding is on the wire well before
// the query completes (the streamed answers trickle out under simulated
// per-message network latency).
func TestStreamingFirstAnswerBeforeCompletion(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma2), ontario.WithNetworkScale(1),
		},
	})

	start := time.Now()
	resp := postQuery(t, ts.URL, lslod.Queries()[2].Text, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var buf []byte
	chunk := make([]byte, 512)
	var firstBinding time.Duration
	for {
		n, err := resp.Body.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if firstBinding == 0 {
			if i := strings.Index(string(buf), `"bindings":[{`); i >= 0 {
				firstBinding = time.Since(start)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	total := time.Since(start)

	var doc sparqlResults
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("streamed response is not valid JSON: %v", err)
	}
	if len(doc.Results.Bindings) < 10 {
		t.Fatalf("only %d bindings; need a streaming-sized result", len(doc.Results.Bindings))
	}
	if firstBinding == 0 {
		t.Fatal("never saw a binding on the wire")
	}
	if firstBinding > total/2 {
		t.Errorf("first binding at %v of %v total: not streaming", firstBinding, total)
	}
}

// TestClientDisconnectCancelsQuery verifies the cancellation path: a
// client that goes away mid-stream tears down the plan, the wrappers stop
// issuing requests, and no goroutines leak.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{
			ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1),
		},
	})

	// Reference: the full query's message bill.
	respFull := postQuery(t, ts.URL, lslod.Queries()[2].Text, nil)
	io.Copy(io.Discard, respFull.Body)
	respFull.Body.Close()
	fullMessages := srv.Metrics().Counter(MetricMessages)
	if fullMessages == 0 {
		t.Fatal("reference query retrieved no messages")
	}

	settle := func() int {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
		return runtime.NumGoroutine()
	}
	before := settle()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sparql",
		strings.NewReader(lslod.Queries()[2].Text))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/sparql-query")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read until the first binding is on the wire, then vanish.
	var buf []byte
	chunk := make([]byte, 256)
	for !strings.Contains(string(buf), `"bindings":[{`) {
		n, err := resp.Body.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if err != nil {
			t.Fatalf("stream ended before first binding: %v", err)
		}
	}
	cancel()
	resp.Body.Close()

	// The server must unwind: executing drops to zero and goroutines
	// return to (about) the pre-request level.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		after := settle()
		if st.Executing == 0 && after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after disconnect: executing=%d goroutines=%d (before=%d)",
				st.Executing, after, before)
		}
	}

	cancelledMessages := srv.Metrics().Counter(MetricMessages) - fullMessages
	if cancelledMessages >= fullMessages {
		t.Errorf("cancelled query retrieved %d messages, full query %d: wrappers did not stop",
			cancelledMessages, fullMessages)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
			ontario.WithNetwork(ontario.Gamma1)},
	}, ontario.WithSourceLimit(4))

	resp := postQuery(t, ts.URL, lslod.Queries()[1].Text, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	out := string(body)
	for _, want := range []string{
		"ontario_queries_total 1",
		"ontario_query_duration_ms_bucket",
		"ontario_time_to_first_answer_ms_count",
		`ontario_source_delay_ms_bucket{source=`,
		"ontario_executing_queries 0",
		"ontario_source_inflight_peak{source=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", hresp.StatusCode)
	}
}

// TestRequestParameters checks mode/network/timeout request parameters.
func TestRequestParameters(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		QueryTimeout:   5 * time.Second,
		DefaultOptions: []ontario.Option{ontario.WithNetworkScale(0)},
	})

	resp := postQuery(t, ts.URL, lslod.Queries()[0].Text,
		url.Values{"mode": {"aware"}, "network": {"gamma1"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("parameterized query status = %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	respBad := postQuery(t, ts.URL, lslod.Queries()[0].Text, url.Values{"mode": {"warp"}})
	defer respBad.Body.Close()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode status = %d, want 400", respBad.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/sparql", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	respPut, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer respPut.Body.Close()
	if respPut.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT status = %d, want 405", respPut.StatusCode)
	}
	if got := respPut.Header.Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow header = %q", got)
	}
}
