package server

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"ontario"
)

const cacheTestQuery = `SELECT ?probe ?gene WHERE {
  ?probe <http://lake.tib.eu/affymetrix/vocab#transcribedFrom> ?gene .
  ?probe <http://lake.tib.eu/affymetrix/vocab#chromosome> "chr11" .
}`

// TestPlanCacheHitSkipsPlanning: the second identical request must be
// served from the plan cache — the hit counter increments and the miss
// counter does not.
func TestPlanCacheHitSkipsPlanning(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})

	run := func() {
		resp := postQuery(t, ts.URL, cacheTestQuery, nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
	}

	run()
	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 0 {
		t.Fatalf("hits after first request = %d, want 0", hits)
	}
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 1 {
		t.Fatalf("misses after first request = %d, want 1", misses)
	}

	// Same query with different whitespace: normalization must still hit.
	reformatted := strings.Join(strings.Fields(cacheTestQuery), " ")
	resp := postQuery(t, ts.URL, reformatted, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 1 {
		t.Errorf("hits after second request = %d, want 1", hits)
	}
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 1 {
		t.Errorf("misses after second request = %d, want 1", misses)
	}
	if n := srv.plans.len(); n != 1 {
		t.Errorf("plan cache holds %d plans, want 1", n)
	}

	// A different plan-shaping parameter must be a separate cache entry.
	resp = postQuery(t, ts.URL, cacheTestQuery, url.Values{"mode": {"unaware"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 2 {
		t.Errorf("misses after mode change = %d, want 2", misses)
	}
}

// TestNormalizeQueryPreservesLiterals: whitespace outside string literals
// collapses (formatting must not defeat the cache) but whitespace INSIDE a
// literal is significant — two queries differing only there must get
// distinct keys.
func TestNormalizeQueryPreservesLiterals(t *testing.T) {
	a := "SELECT ?v  WHERE {\n\t?s <http://p> ?v .\n FILTER (?v = \"New York\") }"
	b := "SELECT ?v WHERE { ?s <http://p> ?v . FILTER (?v = \"New York\") }"
	if normalizeQuery(a) != normalizeQuery(b) {
		t.Errorf("formatting-only difference changed the key:\n%q\n%q", normalizeQuery(a), normalizeQuery(b))
	}
	c := strings.Replace(a, "New York", "New  York", 1)
	if normalizeQuery(a) == normalizeQuery(c) {
		t.Errorf("whitespace inside a literal was collapsed: %q", normalizeQuery(c))
	}
	d := `SELECT ?v WHERE { ?s <http://p> "esc\" quote  here" }`
	e := `SELECT ?v WHERE { ?s <http://p> "esc\" quote here" }`
	if normalizeQuery(d) == normalizeQuery(e) {
		t.Error("escaped quote ended the literal early")
	}
	f := "SELECT ?v WHERE { ?s <http://p> 'single  quoted' }"
	g := "SELECT ?v WHERE { ?s <http://p> 'single quoted' }"
	if normalizeQuery(f) == normalizeQuery(g) {
		t.Error("single-quoted literal was collapsed")
	}
}

// TestPlanCacheEviction: the LRU must not grow past its capacity.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", &ontario.Prepared{})
	c.put("b", &ontario.Prepared{})
	c.put("a", &ontario.Prepared{}) // refresh a: now a is most recent
	c.put("c", &ontario.Prepared{}) // evicts b
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if c.get("b") != nil {
		t.Error("b survived eviction")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Error("a/c missing after eviction")
	}
}

// TestExplainEndpoint: ?explain=1 renders the plan with estimates instead
// of executing, and goes through the plan cache too.
func TestExplainEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})
	resp := postQuery(t, ts.URL, cacheTestQuery, url.Values{"explain": {"1"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"Plan[", "optimizer=cost", "{est card="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if qs := srv.Metrics().Counter(MetricQueries); qs != 0 {
		t.Errorf("explain executed a query (queries counter = %d)", qs)
	}

	// The plan cached by EXPLAIN serves the real execution as a hit.
	resp = postQuery(t, ts.URL, cacheTestQuery, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 1 {
		t.Errorf("execution after explain was not a cache hit (hits = %d)", hits)
	}
}
