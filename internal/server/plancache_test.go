package server

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"ontario"
	"ontario/lake"
)

const cacheTestQuery = `SELECT ?probe ?gene WHERE {
  ?probe <http://lake.tib.eu/affymetrix/vocab#transcribedFrom> ?gene .
  ?probe <http://lake.tib.eu/affymetrix/vocab#chromosome> "chr11" .
}`

// TestPlanCacheHitSkipsPlanning: the second identical request must be
// served from the plan cache — the hit counter increments and the miss
// counter does not.
func TestPlanCacheHitSkipsPlanning(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})

	run := func() {
		resp := postQuery(t, ts.URL, cacheTestQuery, nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
	}

	run()
	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 0 {
		t.Fatalf("hits after first request = %d, want 0", hits)
	}
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 1 {
		t.Fatalf("misses after first request = %d, want 1", misses)
	}

	// Same query with different whitespace: normalization must still hit.
	reformatted := strings.Join(strings.Fields(cacheTestQuery), " ")
	resp := postQuery(t, ts.URL, reformatted, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 1 {
		t.Errorf("hits after second request = %d, want 1", hits)
	}
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 1 {
		t.Errorf("misses after second request = %d, want 1", misses)
	}
	if n := srv.plans.len(); n != 1 {
		t.Errorf("plan cache holds %d plans, want 1", n)
	}

	// A different plan-shaping parameter must be a separate cache entry.
	resp = postQuery(t, ts.URL, cacheTestQuery, url.Values{"mode": {"unaware"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if misses := srv.Metrics().Counter(MetricPlanCacheMiss); misses != 2 {
		t.Errorf("misses after mode change = %d, want 2", misses)
	}
}

// TestNormalizeQueryPreservesLiterals: whitespace outside string literals
// collapses (formatting must not defeat the cache) but whitespace INSIDE a
// literal is significant — two queries differing only there must get
// distinct keys.
func TestNormalizeQueryPreservesLiterals(t *testing.T) {
	a := "SELECT ?v  WHERE {\n\t?s <http://p> ?v .\n FILTER (?v = \"New York\") }"
	b := "SELECT ?v WHERE { ?s <http://p> ?v . FILTER (?v = \"New York\") }"
	if normalizeQuery(a) != normalizeQuery(b) {
		t.Errorf("formatting-only difference changed the key:\n%q\n%q", normalizeQuery(a), normalizeQuery(b))
	}
	c := strings.Replace(a, "New York", "New  York", 1)
	if normalizeQuery(a) == normalizeQuery(c) {
		t.Errorf("whitespace inside a literal was collapsed: %q", normalizeQuery(c))
	}
	d := `SELECT ?v WHERE { ?s <http://p> "esc\" quote  here" }`
	e := `SELECT ?v WHERE { ?s <http://p> "esc\" quote here" }`
	if normalizeQuery(d) == normalizeQuery(e) {
		t.Error("escaped quote ended the literal early")
	}
	f := "SELECT ?v WHERE { ?s <http://p> 'single  quoted' }"
	g := "SELECT ?v WHERE { ?s <http://p> 'single quoted' }"
	if normalizeQuery(f) == normalizeQuery(g) {
		t.Error("single-quoted literal was collapsed")
	}
}

// TestPlanCacheEviction: the LRU must not grow past its capacity.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", &ontario.Prepared{})
	c.put("b", &ontario.Prepared{})
	c.put("a", &ontario.Prepared{}) // refresh a: now a is most recent
	c.put("c", &ontario.Prepared{}) // evicts b
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if c.get("b") != nil {
		t.Error("b survived eviction")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Error("a/c missing after eviction")
	}
}

// TestLatencyFingerprintBuckets pins the adaptive part of the plan-cache
// key: a plan optimized with measured remote latency must be re-planned
// when a source's observed health drifts materially (different bucket ⇒
// different key ⇒ cache miss), while sample jitter within a bucket and
// engines with no remote observations leave the key unchanged.
func TestLatencyFingerprintBuckets(t *testing.T) {
	mk := func(lat time.Duration, rate float64) []ontario.SourceHealth {
		return []ontario.SourceHealth{{Source: "peer", Latency: lat, FailureRate: rate}}
	}
	if got := latencyFingerprint(nil); got != "" {
		t.Errorf("fingerprint with no health = %q, want empty", got)
	}
	if got := latencyFingerprint(mk(0, 0)); got != "" {
		t.Errorf("fingerprint with no successful observation = %q, want empty", got)
	}
	// Jitter inside one power-of-two bucket: same key.
	if a, b := latencyFingerprint(mk(9*time.Millisecond, 0)), latencyFingerprint(mk(11*time.Millisecond, 0)); a != b {
		t.Errorf("in-bucket jitter changed the key: %q vs %q", a, b)
	}
	// An order-of-magnitude drift: different key.
	if a, b := latencyFingerprint(mk(4*time.Millisecond, 0)), latencyFingerprint(mk(40*time.Millisecond, 0)); a == b {
		t.Errorf("4ms and 40ms share the key %q — stale plans would never re-optimize", a)
	}
	// Health drift at constant latency: a source going from reliable to 50%
	// failures doubles its effective cost and must change the key.
	if a, b := latencyFingerprint(mk(10*time.Millisecond, 0)), latencyFingerprint(mk(10*time.Millisecond, 0.5)); a == b {
		t.Errorf("failure-rate drift did not change the key %q", a)
	}
}

// TestSetEngineSwapsServingEngineAndDropsPlans: SetEngine (deferred
// federation) must route subsequent requests to the new engine and
// invalidate plans prepared against the old one.
func TestSetEngineSwapsServingEngineAndDropsPlans(t *testing.T) {
	oldSrc := &fnSource{id: "old", mols: []lake.Molecule{molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			return []lake.Binding{{"x": lake.IRI("http://ex/b1"), "n": lake.Literal("old")}}, nil
		}}
	srv, base := newCustomServer(t, Config{}, oldSrc)

	query := "SELECT ?x ?n WHERE { ?x <http://ex/name> ?n }"
	get := func() string {
		t.Helper()
		resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get(); !strings.Contains(out, "old") {
		t.Fatalf("answer before swap = %s, want the old source's binding", out)
	}
	if n := srv.plans.len(); n != 1 {
		t.Fatalf("plan cache holds %d plans before swap, want 1", n)
	}

	newSrc := &fnSource{id: "new", mols: []lake.Molecule{molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			return []lake.Binding{{"x": lake.IRI("http://ex/b1"), "n": lake.Literal("new")}}, nil
		}}
	b := lake.NewBuilder()
	b.AddSource(newSrc)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	srv.SetEngine(ontario.New(l))

	if n := srv.plans.len(); n != 0 {
		t.Fatalf("plan cache holds %d plans after swap, want 0", n)
	}
	if out := get(); !strings.Contains(out, "new") {
		t.Fatalf("answer after swap = %s, want the new source's binding", out)
	}
}

// TestExplainEndpoint: ?explain=1 renders the plan with estimates instead
// of executing, and goes through the plan cache too.
func TestExplainEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{
		DefaultOptions: []ontario.Option{ontario.WithAwarePlan(), ontario.WithNetworkScale(0)},
	})
	resp := postQuery(t, ts.URL, cacheTestQuery, url.Values{"explain": {"1"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{"Plan[", "optimizer=cost", "{est card="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if qs := srv.Metrics().Counter(MetricQueries); qs != 0 {
		t.Errorf("explain executed a query (queries counter = %d)", qs)
	}

	// The plan cached by EXPLAIN serves the real execution as a hit.
	resp = postQuery(t, ts.URL, cacheTestQuery, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits := srv.Metrics().Counter(MetricPlanCacheHits); hits != 1 {
		t.Errorf("execution after explain was not a cache hit (hits = %d)", hits)
	}
}
