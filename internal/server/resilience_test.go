package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ontario"
	"ontario/lake"
)

// fnSource is a scriptable custom lake source for failure-injection tests.
type fnSource struct {
	id   string
	mols []lake.Molecule
	exec func(ctx context.Context, req *lake.Request) ([]lake.Binding, error)
}

func (s *fnSource) ID() string                 { return s.id }
func (s *fnSource) Molecules() []lake.Molecule { return s.mols }
func (s *fnSource) Execute(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
	return s.exec(ctx, req)
}

func newCustomServer(t *testing.T, cfg Config, sources ...lake.Source) (*Server, string) {
	t.Helper()
	b := lake.NewBuilder()
	for _, s := range sources {
		b.AddSource(s)
	}
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ontario.New(l), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func molA() lake.Molecule {
	return lake.Molecule{Class: "http://ex/A", Predicates: []lake.Predicate{
		{IRI: "http://ex/t", LinkedClass: "http://ex/B"},
	}}
}

func molB() lake.Molecule {
	return lake.Molecule{Class: "http://ex/B", Predicates: []lake.Predicate{
		{IRI: "http://ex/name"},
	}}
}

// TestServerMidStreamFailure pins the streaming error contract: when a
// source dies after answers are already on the wire, the server must count
// the query failed and name the error in the X-Ontario-Error trailer
// instead of silently ending a short, well-formed result set.
func TestServerMidStreamFailure(t *testing.T) {
	// Both sources serve scans; the first seeded (bind-join) request
	// succeeds, every later one explodes — so whichever side the optimizer
	// probes, the query fails after its first delivered answer.
	var seeded atomic.Int32
	seededExec := func(rows []lake.Binding) func(context.Context, *lake.Request) ([]lake.Binding, error) {
		return func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			if len(req.Seeds) > 0 && seeded.Add(1) > 1 {
				return nil, fmt.Errorf("source exploded mid-query")
			}
			return rows, nil
		}
	}
	left := &fnSource{id: "left", mols: []lake.Molecule{molA()}, exec: seededExec([]lake.Binding{
		{"s": lake.IRI("http://ex/s1"), "x": lake.IRI("http://ex/b1")},
		{"s": lake.IRI("http://ex/s2"), "x": lake.IRI("http://ex/b2")},
	})}
	right := &fnSource{id: "right", mols: []lake.Molecule{molB()}, exec: seededExec([]lake.Binding{
		{"x": lake.IRI("http://ex/b1"), "n": lake.Literal("n1")},
		{"x": lake.IRI("http://ex/b2"), "n": lake.Literal("n2")},
	})}
	srv, base := newCustomServer(t, Config{DefaultOptions: []ontario.Option{
		ontario.WithJoinOperator(ontario.JoinBind),
		ontario.WithBindBlockSize(1),
		ontario.WithBindConcurrency(1),
		ontario.WithBatchSize(1),
	}}, left, right)

	query := "SELECT ?s ?x ?n WHERE { ?s <http://ex/t> ?x . ?x <http://ex/name> ?n }"
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (failure struck after the header)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	trailer := resp.Trailer.Get("X-Ontario-Error")
	if !strings.Contains(trailer, "source exploded") {
		t.Fatalf("X-Ontario-Error trailer = %q, want the source failure", trailer)
	}
	// The JSON document must be left unterminated: a strict client sees a
	// truncated body, not a quietly-short result set.
	var doc sparqlResults
	if err := json.Unmarshal(body, &doc); err == nil {
		t.Fatalf("body parsed as a complete document despite the failure: %s", body)
	}
	if got := metricValue(t, base, "ontario_queries_failed_total"); got != "1" {
		t.Fatalf("ontario_queries_failed_total = %s, want 1", got)
	}
	_ = srv
}

// metricValue scrapes one un-labelled metric from /metrics.
func metricValue(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	return ""
}

// TestServerExecStatusCodes pins the status-code contract: 400 only for
// parse/parameter errors, 504 for an expired query deadline, 500 for
// internal execution failures.
func TestServerExecStatusCodes(t *testing.T) {
	broken := &fnSource{id: "broken", mols: []lake.Molecule{molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			return nil, fmt.Errorf("backend wedged")
		}}
	slow := &fnSource{id: "slow", mols: []lake.Molecule{molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			select {
			case <-time.After(5 * time.Second):
				return nil, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}}

	query := "SELECT ?x ?n WHERE { ?x <http://ex/name> ?n }"
	cases := []struct {
		name   string
		src    lake.Source
		query  string
		params string
		want   int
	}{
		{name: "parse error is 400", src: broken, query: "SELECT ?x WHERE {", want: http.StatusBadRequest},
		{name: "bad parameter is 400", src: broken, query: query, params: "&optimizer=bogus", want: http.StatusBadRequest},
		{name: "execution failure is 500", src: broken, query: query, want: http.StatusInternalServerError},
		{name: "query deadline is 504", src: slow, query: query, params: "&timeout=100ms", want: http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, base := newCustomServer(t, Config{}, tc.src)
			resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(tc.query) + tc.params)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestServerPostFormParams pins the SPARQL-Protocol POST contract: the
// standard way to send a query is a form-encoded POST, and the control
// parameters must be honored there, not just in the URL.
func TestServerPostFormParams(t *testing.T) {
	slow := &fnSource{id: "slow", mols: []lake.Molecule{molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			select {
			case <-time.After(800 * time.Millisecond):
				return []lake.Binding{{"x": lake.IRI("http://ex/b1"), "n": lake.Literal("n1")}}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}}
	_, base := newCustomServer(t, Config{}, slow)
	query := "SELECT ?x ?n WHERE { ?x <http://ex/name> ?n }"

	t.Run("explain in form body", func(t *testing.T) {
		resp, err := http.PostForm(base+"/sparql", url.Values{"query": {query}, "explain": {"1"}})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("Content-Type = %q, want a text/plain plan (explain ignored in form body?)", ct)
		}
	})
	t.Run("bad optimizer in form body", func(t *testing.T) {
		resp, err := http.PostForm(base+"/sparql", url.Values{"query": {query}, "optimizer": {"bogus"}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (optimizer ignored in form body?)", resp.StatusCode)
		}
	})
	t.Run("timeout in form body", func(t *testing.T) {
		start := time.Now()
		resp, err := http.PostForm(base+"/sparql", url.Values{"query": {query}, "timeout": {"100ms"}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d after %v, want 504 (timeout ignored in form body?)",
				resp.StatusCode, time.Since(start))
		}
	})
}

// TestServerMoleculesEndpoint pins the federation discovery document: the
// /molecules endpoint must advertise the lake's templates in the exact
// shape lake.DiscoverMolecules consumes.
func TestServerMoleculesEndpoint(t *testing.T) {
	src := &fnSource{id: "left", mols: []lake.Molecule{molA(), molB()},
		exec: func(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
			return nil, nil
		}}
	_, base := newCustomServer(t, Config{}, src)

	got, err := lake.DiscoverMolecules(context.Background(), base)
	if err != nil {
		t.Fatalf("DiscoverMolecules: %v", err)
	}
	want := []lake.Molecule{
		{Class: "http://ex/A", Predicates: molA().Predicates, Sources: []string{"left"}},
		{Class: "http://ex/B", Predicates: molB().Predicates, Sources: []string{"left"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("discovered molecules = %+v, want %+v", got, want)
	}
}
