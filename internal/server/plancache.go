package server

import (
	"container/list"
	"strings"
	"sync"

	"ontario"
)

// planCache is a size-bounded LRU of prepared queries keyed by normalized
// query text plus the plan-shaping request parameters. A hit skips parsing
// and planning entirely: the cached *ontario.Prepared is read-only during
// execution, so any number of concurrent requests may run it.
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	prep *ontario.Prepared
}

// newPlanCache returns a cache holding up to capacity plans; nil when
// capacity < 1 (caching disabled — callers nil-check).
func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		return nil
	}
	return &planCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached plan for key, promoting it to most recently used.
func (c *planCache) get(key string) *ontario.Prepared {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).prep
}

// put stores the plan, evicting the least recently used entry when full.
func (c *planCache) put(key string, prep *ontario.Prepared) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planCacheEntry).prep = prep
		return
	}
	c.m[key] = c.ll.PushFront(&planCacheEntry{key: key, prep: prep})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*planCacheEntry).key)
	}
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// clear drops every cached plan (used when the server's engine is
// swapped: the cached *ontario.Prepared belong to the old engine).
func (c *planCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}

// NormalizeQuery is the exported face of normalizeQuery: the cluster
// router keys replica affinity on it so a query lands on the replica
// whose plan cache already holds it, matching the server's own cache key.
func NormalizeQuery(text string) string { return normalizeQuery(text) }

// normalizeQuery collapses whitespace runs OUTSIDE string literals so
// formatting differences do not defeat the cache, while queries differing
// only inside a literal (e.g. FILTER (?v = "New  York")) keep distinct
// keys. Quotes follow SPARQL literal syntax: " or ' delimited, backslash
// escapes.
func normalizeQuery(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	var quote byte
	escaped := false
	pendingSpace := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if quote != 0 {
			b.WriteByte(c)
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == quote:
				quote = 0
			}
			continue
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if b.Len() > 0 {
				pendingSpace = true
			}
			continue
		case c == '"' || c == '\'':
			quote = c
		}
		if pendingSpace {
			b.WriteByte(' ')
			pendingSpace = false
		}
		b.WriteByte(c)
	}
	return b.String()
}
