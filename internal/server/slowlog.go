package server

import (
	"sync"
	"time"

	"ontario"
)

// QueryRecord is one completed query in the slow-query log: the query
// text, its trace identity, outcome, the executed plan annotated with
// actuals, and the per-source health observed at completion time. It is
// the JSON row format of /debug/queries.
type QueryRecord struct {
	QueryID    string    `json:"query_id"`
	TraceID    string    `json:"trace_id"`
	When       time.Time `json:"when"`
	Query      string    `json:"query"`
	Status     int       `json:"status"`
	Answers    int       `json:"answers"`
	Messages   int       `json:"messages"`
	DurationMS float64   `json:"duration_ms"`
	TTFAMS     float64   `json:"ttfa_ms"`
	Error      string    `json:"error,omitempty"`
	// Analysis is the EXPLAIN ANALYZE view of the execution (per-operator
	// actuals, remote spans).
	Analysis *ontario.Analysis `json:"analysis,omitempty"`
	// Sources is the engine's per-source health snapshot at completion.
	Sources []ontario.SourceHealth `json:"sources,omitempty"`
}

// slowLog is a fixed-size ring of the most recent completed queries. Every
// completion is recorded (recording is cheap — the analysis is already
// built for metrics); the threshold filter is applied at read time, so the
// operator picks what "slow" means per request.
type slowLog struct {
	mu   sync.Mutex
	ring []QueryRecord
	next int
	n    int
}

func newSlowLog(size int) *slowLog {
	if size <= 0 {
		return nil
	}
	return &slowLog{ring: make([]QueryRecord, size)}
}

// add records one completed query; nil receiver (log disabled) is a no-op.
func (l *slowLog) add(rec QueryRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// slower returns the recorded queries at least as slow as threshold, most
// recent first.
func (l *slowLog) slower(threshold time.Duration) []QueryRecord {
	if l == nil {
		return nil
	}
	minMS := float64(threshold) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		rec := l.ring[(l.next-1-i+len(l.ring))%len(l.ring)]
		if rec.DurationMS >= minMS {
			out = append(out, rec)
		}
	}
	return out
}
