// Package btree implements an in-memory B+tree keyed by byte-comparable
// strings, with duplicate keys allowed. It backs the ordered secondary
// indexes of the relational engine: point lookups, range scans and ordered
// iteration.
package btree

import "sort"

const (
	// order is the maximum number of children of an internal node.
	order      = 64
	maxKeys    = order - 1
	minKeys    = maxKeys / 2
	maxLeafLen = order
)

// Tree is a B+tree mapping string keys to integer values (row ids).
// Duplicate keys are permitted; values for equal keys are kept in insertion
// order. The zero value is not usable; call New.
type Tree struct {
	root node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// Len returns the number of stored entries (including duplicates).
func (t *Tree) Len() int { return t.size }

type node interface {
	// insert adds (key, val); when the node splits it returns the
	// separator key and the new right sibling, else ("", nil).
	insert(key string, val int) (string, node)
	// firstLeaf descends to the leftmost leaf.
	firstLeaf() *leaf
	// seek descends to the leaf that would contain key and returns it with
	// the index of the first entry >= key within that leaf.
	seek(key string) (*leaf, int)
	// height is the node height (leaf = 1); used by invariant checks.
	height() int
	// check verifies structural invariants, returning entry count.
	check(min, max string, isRoot bool) int
}

type leaf struct {
	keys []string
	vals []int
	next *leaf
}

type inner struct {
	keys     []string
	children []node
}

// Insert adds (key, val) to the tree.
func (t *Tree) Insert(key string, val int) {
	sep, right := t.root.insert(key, val)
	if right != nil {
		t.root = &inner{keys: []string{sep}, children: []node{t.root, right}}
	}
	t.size++
}

// Get returns all values stored under exactly key, in insertion order.
func (t *Tree) Get(key string) []int {
	lf, i := t.root.seek(key)
	var out []int
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if lf.keys[i] != key {
				return out
			}
			out = append(out, lf.vals[i])
		}
		lf, i = lf.next, 0
	}
	return out
}

// Range calls fn for every entry with lo <= key and (hi == "" or key < hi
// when hiExclusive, key <= hi otherwise), in ascending key order. fn
// returning false stops the scan. An empty lo starts at the smallest key;
// hasHi=false scans to the end.
func (t *Tree) Range(lo string, hasLo bool, hi string, hasHi, hiExclusive bool, fn func(key string, val int) bool) {
	var lf *leaf
	var i int
	if hasLo {
		lf, i = t.root.seek(lo)
	} else {
		lf, i = t.root.firstLeaf(), 0
	}
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if hasHi {
				if hiExclusive && k >= hi {
					return
				}
				if !hiExclusive && k > hi {
					return
				}
			}
			if !fn(k, lf.vals[i]) {
				return
			}
		}
		lf, i = lf.next, 0
	}
}

// Ascend calls fn for every entry in ascending key order until fn returns
// false.
func (t *Tree) Ascend(fn func(key string, val int) bool) {
	t.Range("", false, "", false, false, fn)
}

// Min returns the smallest key, or "" and false when empty.
func (t *Tree) Min() (string, bool) {
	lf := t.root.firstLeaf()
	for lf != nil {
		if len(lf.keys) > 0 {
			return lf.keys[0], true
		}
		lf = lf.next
	}
	return "", false
}

// leaf implementation

func (l *leaf) firstLeaf() *leaf { return l }

func (l *leaf) height() int { return 1 }

func (l *leaf) seek(key string) (*leaf, int) {
	i := sort.SearchStrings(l.keys, key)
	return l, i
}

func (l *leaf) insert(key string, val int) (string, node) {
	// Insert after any existing duplicates of key to preserve insertion
	// order among equal keys.
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] > key })
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, 0)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	if len(l.keys) <= maxLeafLen {
		return "", nil
	}
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]string(nil), l.keys[mid:]...),
		vals: append([]int(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right.keys[0], right
}

func (l *leaf) check(min, max string, isRoot bool) int {
	if !isRoot && len(l.keys) == 0 {
		panic("btree: empty non-root leaf")
	}
	for i := range l.keys {
		if i > 0 && l.keys[i] < l.keys[i-1] {
			panic("btree: leaf keys out of order")
		}
		if min != "" && l.keys[i] < min {
			panic("btree: leaf key below lower bound")
		}
		if max != "" && l.keys[i] > max {
			panic("btree: leaf key above upper bound")
		}
	}
	return len(l.keys)
}

// inner implementation

func (n *inner) firstLeaf() *leaf { return n.children[0].firstLeaf() }

func (n *inner) height() int { return 1 + n.children[0].height() }

func (n *inner) childFor(key string) int {
	// children[i] holds keys < keys[i]; duplicates of a separator key may
	// live in the left subtree, so descend left on equality for seeks.
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
}

func (n *inner) seek(key string) (*leaf, int) {
	// Descend to the leftmost child that could contain key: children to the
	// left of the first separator > key might hold duplicates equal to key.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	lf, idx := n.children[i].seek(key)
	if idx < len(lf.keys) {
		return lf, idx
	}
	// key larger than everything in this child: continue in the next leaf.
	return lf.next, 0
}

func (n *inner) insert(key string, val int) (string, node) {
	i := n.childFor(key)
	sep, right := n.children[i].insert(key, val)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= maxKeys {
		return "", nil
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	rightNode := &inner{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sepUp, rightNode
}

func (n *inner) check(min, max string, isRoot bool) int {
	if len(n.children) != len(n.keys)+1 {
		panic("btree: inner node children/keys mismatch")
	}
	if !isRoot && len(n.keys) < 1 {
		panic("btree: underfull inner node")
	}
	h := n.children[0].height()
	total := 0
	for i, c := range n.children {
		if c.height() != h {
			panic("btree: uneven child heights")
		}
		lo, hi := min, max
		if i > 0 {
			lo = n.keys[i-1]
		}
		if i < len(n.keys) {
			hi = n.keys[i]
		}
		total += c.check(lo, hi, false)
	}
	return total
}

// Check panics if any structural invariant is violated; it returns the
// number of entries found by a full traversal. Intended for tests.
func (t *Tree) Check() int {
	n := t.root.check("", "", true)
	if n != t.size {
		panic("btree: size mismatch")
	}
	return n
}
