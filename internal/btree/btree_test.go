package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if got := tr.Get("x"); got != nil {
		t.Fatalf("Get on empty tree = %v, want nil", got)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	tr.Check()
}

func TestInsertAndGet(t *testing.T) {
	tr := New()
	tr.Insert("b", 2)
	tr.Insert("a", 1)
	tr.Insert("c", 3)
	for k, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		got := tr.Get(k)
		if len(got) != 1 || got[0] != want {
			t.Errorf("Get(%q) = %v, want [%d]", k, got, want)
		}
	}
	if got := tr.Get("zz"); got != nil {
		t.Errorf("Get missing key = %v, want nil", got)
	}
	tr.Check()
}

func TestDuplicateKeysPreserveInsertionOrder(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert("dup", i)
	}
	tr.Insert("aaa", -1)
	tr.Insert("zzz", -2)
	got := tr.Get("dup")
	if len(got) != 100 {
		t.Fatalf("Get(dup) returned %d values, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Get(dup)[%d] = %d, want %d (insertion order violated)", i, v, i)
		}
	}
	tr.Check()
}

func TestLargeInsertSorted(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%08d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	tr.Check()
	var keys []string
	tr.Ascend(func(k string, v int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != n {
		t.Fatalf("Ascend visited %d entries, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("Ascend keys not sorted")
	}
}

func TestLargeInsertRandom(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	const n = 8000
	want := map[string][]int{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%05d", rng.Intn(2000)) // force duplicates
		tr.Insert(k, i)
		want[k] = append(want[k], i)
	}
	tr.Check()
	for k, vals := range want {
		got := tr.Get(k)
		if len(got) != len(vals) {
			t.Fatalf("Get(%q) returned %d values, want %d", k, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("Get(%q)[%d] = %d, want %d", k, i, got[i], vals[i])
			}
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), i)
	}
	collect := func(lo string, hasLo bool, hi string, hasHi, hiExcl bool) []int {
		var out []int
		tr.Range(lo, hasLo, hi, hasHi, hiExcl, func(k string, v int) bool {
			out = append(out, v)
			return true
		})
		return out
	}

	got := collect("010", true, "015", true, true)
	wantVals(t, got, 10, 14)

	got = collect("010", true, "015", true, false)
	wantVals(t, got, 10, 15)

	got = collect("", false, "005", true, false)
	wantVals(t, got, 0, 5)

	got = collect("095", true, "", false, false)
	wantVals(t, got, 95, 99)

	got = collect("", false, "", false, false)
	wantVals(t, got, 0, 99)
}

func wantVals(t *testing.T, got []int, lo, hi int) {
	t.Helper()
	if len(got) != hi-lo+1 {
		t.Fatalf("range returned %d entries, want %d (%v)", len(got), hi-lo+1, got)
	}
	for i, v := range got {
		if v != lo+i {
			t.Fatalf("range[%d] = %d, want %d", i, v, lo+i)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(fmt.Sprintf("%02d", i), i)
	}
	count := 0
	tr.Ascend(func(k string, v int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d entries, want 7", count)
	}
}

func TestMin(t *testing.T) {
	tr := New()
	tr.Insert("m", 1)
	tr.Insert("a", 2)
	tr.Insert("z", 3)
	if k, ok := tr.Min(); !ok || k != "a" {
		t.Fatalf("Min = %q/%v, want a/true", k, ok)
	}
}

// Property: for any sequence of insertions, Ascend visits every entry in
// sorted key order and Get finds all values per key.
func TestQuickInsertionProperties(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New()
		want := map[string]int{}
		for i, k := range keys {
			ks := fmt.Sprintf("%05d", k)
			tr.Insert(ks, i)
			want[ks]++
		}
		tr.Check()
		prev := ""
		n := 0
		okOrder := true
		tr.Ascend(func(k string, v int) bool {
			if k < prev {
				okOrder = false
				return false
			}
			prev = k
			n++
			return true
		})
		if !okOrder || n != len(keys) {
			return false
		}
		for k, c := range want {
			if len(tr.Get(k)) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a range scan [lo, hi] returns exactly the entries a linear scan
// of the sorted input would return.
func TestQuickRangeMatchesReference(t *testing.T) {
	f := func(keys []uint8, lo, hi uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		var all []string
		for i, k := range keys {
			ks := fmt.Sprintf("%03d", k)
			tr.Insert(ks, i)
			all = append(all, ks)
		}
		sort.Strings(all)
		loS, hiS := fmt.Sprintf("%03d", lo), fmt.Sprintf("%03d", hi)
		var want []string
		for _, k := range all {
			if k >= loS && k <= hiS {
				want = append(want, k)
			}
		}
		var got []string
		tr.Range(loS, true, hiS, true, false, func(k string, v int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
