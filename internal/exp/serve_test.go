package exp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ontario/internal/netsim"
)

func TestRunServe(t *testing.T) {
	r := testRunner(t)
	res, err := r.RunServe(context.Background(), ServeConfig{
		Clients:       4,
		Requests:      8,
		MaxConcurrent: 2,
		QueueDepth:    8,
		SourceLimit:   2,
		Network:       netsim.Gamma1,
		Timeout:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Errorf("completed %d of 8 requests", res.Completed)
	}
	if res.PeakExecuting > 2 {
		t.Errorf("peak executing %d exceeds max-concurrent 2", res.PeakExecuting)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput measured")
	}
	if res.LatencyP50 <= 0 || res.LatencyP95 < res.LatencyP50 {
		t.Errorf("implausible latency quantiles: p50=%v p95=%v", res.LatencyP50, res.LatencyP95)
	}
	if res.TTFAP50 <= 0 || res.TTFAP50 > res.LatencyP95 {
		t.Errorf("implausible TTFA: %v (latency p95 %v)", res.TTFAP50, res.LatencyP95)
	}
	if res.Answers == 0 {
		t.Error("no answers counted")
	}
}

func TestWriteJSONFiles(t *testing.T) {
	r := testRunner(t)
	dir := t.TempDir()

	row, err := r.Run(context.Background(), Config{QueryID: "Q1", Aware: true, Network: netsim.NoDelay})
	if err != nil {
		t.Fatal(err)
	}
	path, err := WriteRowsJSON(dir, "grid", []*Row{row})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_grid.json" {
		t.Errorf("path = %s, want BENCH_grid.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string    `json:"experiment"`
		Rows       []JSONRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Experiment != "grid" || len(doc.Rows) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	jr := doc.Rows[0]
	if jr.Query != "Q1" || jr.Mode != "aware" || jr.Answers != row.Answers || jr.Messages != row.Messages {
		t.Errorf("row mismatch: %+v vs %+v", jr, row)
	}

	spath, err := WriteServeJSON(dir, []*ServeResult{{Network: "No Delay", Clients: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(spath) != "BENCH_serve.json" {
		t.Errorf("serve path = %s", spath)
	}
}
