package exp

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"ontario"
	"ontario/internal/server"
	"ontario/lake"
)

// ResilienceExpConfig parameterizes the live-federation resilience
// experiment: a front engine federates two in-process ontario-server
// backends over real HTTP, and one backend is degraded per scenario.
type ResilienceExpConfig struct {
	// People is the number of person rows on the first backend; Orgs the
	// number of organisations on the second (each person works at
	// people%orgs). The federated join returns People answers.
	People int
	Orgs   int
	// SlowDelay is the injected per-request latency of the "slow"
	// scenario (default 25ms).
	SlowDelay time.Duration
	// Resilience is the front engine's policy (zero value: experiment
	// defaults tuned for fast runs, not the production defaults).
	Resilience ontario.Resilience
}

// ResilienceResult is one measured scenario.
type ResilienceResult struct {
	Scenario string `json:"scenario"`
	// Queries is how many federated queries the scenario issued; Answers
	// the total solutions retrieved.
	Queries int `json:"queries"`
	Answers int `json:"answers"`
	// Err is the first query failure ("" when every query succeeded).
	Err string `json:"error,omitempty"`
	// Requests/Failures/Retries are the degraded source's health counters
	// after the scenario; Breaker its final circuit state.
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	Retries  int64  `json:"retries"`
	Breaker  string `json:"breaker"`
	// MeasuredLatencyMS is the degraded source's observed latency EWMA.
	MeasuredLatencyMS float64 `json:"measured_latency_ms"`
	// FirstQueryMS is the wall time of the scenario's first query;
	// LastQueryMS of its last (the fail-fast probe under an open
	// breaker).
	FirstQueryMS float64 `json:"first_query_ms"`
	LastQueryMS  float64 `json:"last_query_ms"`
}

const (
	benchPerson  = "http://bench/Person"
	benchOrg     = "http://bench/Org"
	benchWorksAt = "http://bench/worksAt"
	benchOrgName = "http://bench/orgName"
	rdfTypeIRI   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
)

// resilienceBackend builds an in-process ontario-server node over an
// in-memory graph.
func resilienceBackend(sourceID string, triples []lake.Triple) (http.Handler, error) {
	l, err := lake.NewBuilder().AddGraph(sourceID, triples).Build()
	if err != nil {
		return nil, err
	}
	return server.New(ontario.New(l), server.Config{}), nil
}

func peopleTriples(people, orgs int) []lake.Triple {
	var ts []lake.Triple
	for i := 0; i < people; i++ {
		p := lake.IRI(fmt.Sprintf("http://bench/p%d", i))
		o := lake.IRI(fmt.Sprintf("http://bench/org%d", i%orgs))
		ts = append(ts,
			lake.Triple{S: p, P: lake.IRI(rdfTypeIRI), O: lake.IRI(benchPerson)},
			lake.Triple{S: p, P: lake.IRI(benchWorksAt), O: o},
		)
	}
	return ts
}

func orgTriples(orgs int) []lake.Triple {
	var ts []lake.Triple
	for j := 0; j < orgs; j++ {
		o := lake.IRI(fmt.Sprintf("http://bench/org%d", j))
		ts = append(ts,
			lake.Triple{S: o, P: lake.IRI(rdfTypeIRI), O: lake.IRI(benchOrg)},
			lake.Triple{S: o, P: lake.IRI(benchOrgName), O: lake.Literal(fmt.Sprintf("Org %d", j))},
		)
	}
	return ts
}

// federationEngine builds the front engine: both backends registered as
// remote SPARQL endpoints with explicit molecules.
func federationEngine(peopleURL, orgsURL string, r ontario.Resilience) (*ontario.Engine, error) {
	l, err := lake.NewBuilder().
		AddSPARQLEndpoint("people", peopleURL+"/sparql", lake.Molecule{
			Class:      benchPerson,
			Predicates: []lake.Predicate{{IRI: benchWorksAt, LinkedClass: benchOrg}},
		}).
		AddSPARQLEndpoint("orgs", orgsURL+"/sparql", lake.Molecule{
			Class:      benchOrg,
			Predicates: []lake.Predicate{{IRI: benchOrgName}},
		}).
		Build()
	if err != nil {
		return nil, err
	}
	return ontario.New(l, ontario.WithResilience(r)), nil
}

const resilienceQuery = `SELECT ?p ?o ?n WHERE { ?p <` + benchWorksAt + `> ?o . ?o <` + benchOrgName + `> ?n }`

// RunResilience measures the live federation under four conditions: both
// backends healthy, the orgs backend slow, the orgs backend flaky (every
// other request is a 503), and the orgs backend down. Each scenario runs
// three federated queries on a fresh front engine and reports the degraded
// source's health counters — the retry work, the breaker state, and the
// measured latency the cost model sees in place of the static profile.
func RunResilience(ctx context.Context, cfg ResilienceExpConfig) ([]*ResilienceResult, error) {
	if cfg.People <= 0 {
		cfg.People = 40
	}
	if cfg.Orgs <= 0 {
		cfg.Orgs = 8
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 25 * time.Millisecond
	}
	if cfg.Resilience == (ontario.Resilience{}) {
		cfg.Resilience = ontario.Resilience{
			Timeout:          5 * time.Second,
			MaxRetries:       3,
			RetryBase:        2 * time.Millisecond,
			RetryMax:         20 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Second,
		}
	}

	peopleSrv, err := resilienceBackend("people-local", peopleTriples(cfg.People, cfg.Orgs))
	if err != nil {
		return nil, err
	}
	orgsSrv, err := resilienceBackend("orgs-local", orgTriples(cfg.Orgs))
	if err != nil {
		return nil, err
	}
	peopleTS := httptest.NewServer(peopleSrv)
	defer peopleTS.Close()

	// The orgs backend is served through degradable fronts, one per
	// scenario, so each scenario sees a fresh failure pattern.
	healthyTS := httptest.NewServer(orgsSrv)
	defer healthyTS.Close()
	slowTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(cfg.SlowDelay)
		orgsSrv.ServeHTTP(w, r)
	}))
	defer slowTS.Close()
	var flakyN atomic.Int64
	flakyTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if flakyN.Add(1)%2 == 1 {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		orgsSrv.ServeHTTP(w, r)
	}))
	defer flakyTS.Close()
	downTS := httptest.NewServer(orgsSrv)
	downTS.Close() // connection refused from here on

	scenarios := []struct {
		name    string
		orgsURL string
	}{
		{"healthy", healthyTS.URL},
		{"slow", slowTS.URL},
		{"flaky", flakyTS.URL},
		{"down", downTS.URL},
	}

	const queriesPerScenario = 3
	var out []*ResilienceResult
	for _, sc := range scenarios {
		eng, err := federationEngine(peopleTS.URL, sc.orgsURL, cfg.Resilience)
		if err != nil {
			return nil, err
		}
		res := &ResilienceResult{Scenario: sc.name, Queries: queriesPerScenario}
		for q := 0; q < queriesPerScenario; q++ {
			start := time.Now()
			n, qerr := runFederatedQuery(ctx, eng)
			elapsed := float64(time.Since(start)) / 1e6
			if q == 0 {
				res.FirstQueryMS = elapsed
			}
			res.LastQueryMS = elapsed
			res.Answers += n
			if qerr != nil && res.Err == "" {
				res.Err = qerr.Error()
			}
		}
		for _, h := range eng.SourceHealth() {
			if h.Source != "orgs" {
				continue
			}
			res.Requests = h.Requests
			res.Failures = h.Failures
			res.Retries = h.Retries
			res.Breaker = h.State
			res.MeasuredLatencyMS = float64(h.Latency) / 1e6
		}
		out = append(out, res)
	}
	return out, nil
}

func runFederatedQuery(ctx context.Context, eng *ontario.Engine) (int, error) {
	res, err := eng.Query(ctx, resilienceQuery)
	if err != nil {
		return 0, err
	}
	sols, err := res.Collect()
	return len(sols), err
}

// WriteResilienceTable renders the scenario rows.
func WriteResilienceTable(w io.Writer, rows []*ResilienceResult) {
	fmt.Fprintf(w, "%-8s %7s %7s %8s %8s %7s %9s %10s %9s %9s  %s\n",
		"scenario", "queries", "answers", "requests", "failures", "retries",
		"breaker", "latency", "first", "last", "error")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 110))
	for _, r := range rows {
		errStr := r.Err
		if len(errStr) > 48 {
			errStr = errStr[:45] + "..."
		}
		fmt.Fprintf(w, "%-8s %7d %7d %8d %8d %7d %9s %8.2fms %7.1fms %7.1fms  %s\n",
			r.Scenario, r.Queries, r.Answers, r.Requests, r.Failures, r.Retries,
			r.Breaker, r.MeasuredLatencyMS, r.FirstQueryMS, r.LastQueryMS, errStr)
	}
}

// WriteResilienceJSON writes the scenario rows as
// dir/BENCH_resilience.json and returns the written path.
func WriteResilienceJSON(dir string, rows []*ResilienceResult) (string, error) {
	return writeJSONDoc(dir, "resilience", rows)
}
