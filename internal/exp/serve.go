package exp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ontario"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/server"
)

// ServeConfig parameterizes the serving-layer load experiment: K
// concurrent clients drive the benchmark queries against an in-process
// instance of internal/server and measure what a multi-client deployment
// would see.
type ServeConfig struct {
	// Clients is the number of concurrent clients (K).
	Clients int
	// Requests is the total number of queries to complete across clients.
	Requests int
	// MaxConcurrent and QueueDepth configure the server's admission
	// control (0 means the server defaults, 4 and 16; negative QueueDepth
	// disables queueing). The resolved values are recorded in the result.
	MaxConcurrent int
	QueueDepth    int
	// SourceLimit bounds in-flight wrapper requests per source (0 =
	// unlimited).
	SourceLimit int
	// Network is the simulated network profile of every query.
	Network netsim.Profile
	// Timeout is the per-query deadline (0 = server default).
	Timeout time.Duration
	// BatchSize sets the exchange batch size of every query (0 = engine
	// default, 1 = binding-at-a-time).
	BatchSize int
	// ProbeParallelism sets the symmetric hash join's morsel-parallel probe
	// worker count for every query (0 = engine default).
	ProbeParallelism int
}

// ServeResult is one measured serving-load cell.
type ServeResult struct {
	Network       string        `json:"network"`
	Clients       int           `json:"clients"`
	MaxConcurrent int           `json:"max_concurrent"`
	QueueDepth    int           `json:"queue_depth"`
	SourceLimit   int           `json:"source_limit"`
	Completed     int           `json:"completed"`
	Rejected      int           `json:"rejected_503"`
	Wall          time.Duration `json:"wall_ns"`
	Throughput    float64       `json:"throughput_qps"`
	LatencyP50    time.Duration `json:"latency_p50_ns"`
	LatencyP95    time.Duration `json:"latency_p95_ns"`
	LatencyMean   time.Duration `json:"latency_mean_ns"`
	TTFAP50       time.Duration `json:"ttfa_p50_ns"`
	TTFAP95       time.Duration `json:"ttfa_p95_ns"`
	PeakExecuting int           `json:"peak_executing"`
	Answers       int           `json:"answers"`
}

// RunServe starts an in-process server over the runner's lake and drives
// it with cfg.Clients concurrent clients until cfg.Requests queries have
// completed, counting 503 rejections (clients honour Retry-After and
// retry). Per-request latency is wall time to the last result byte; TTFA
// is wall time until the first binding appears on the wire.
func (r *Runner) RunServe(ctx context.Context, cfg ServeConfig) (*ServeResult, error) {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Requests < 1 {
		cfg.Requests = cfg.Clients
	}
	// Resolve the server's zero-value defaults up front so the recorded
	// experiment configuration (table + BENCH_serve.json) matches what
	// actually ran.
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	} else if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}

	var engOpts []ontario.EngineOption
	if cfg.SourceLimit > 0 {
		engOpts = append(engOpts, ontario.WithSourceLimit(cfg.SourceLimit))
	}
	eng := ontario.New(r.Lake.Lake, engOpts...)
	serverQueue := cfg.QueueDepth
	if serverQueue == 0 {
		serverQueue = -1 // normalized 0 means queueing disabled
	}
	defaultOpts := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(pubProfile(cfg.Network)),
		ontario.WithNetworkScale(r.NetworkScale),
		ontario.WithSeed(r.Seed),
	}
	if cfg.BatchSize > 0 {
		defaultOpts = append(defaultOpts, ontario.WithBatchSize(cfg.BatchSize))
	}
	if cfg.ProbeParallelism > 0 {
		defaultOpts = append(defaultOpts, ontario.WithProbeParallelism(cfg.ProbeParallelism))
	}
	srv := server.New(eng, server.Config{
		MaxConcurrent:  cfg.MaxConcurrent,
		QueueDepth:     serverQueue,
		QueryTimeout:   cfg.Timeout,
		DefaultOptions: defaultOpts,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// One connection per client: the default transport keeps only two
	// idle connections per host, so a K-client load would re-dial TCP on
	// most requests and measure connection setup instead of the server.
	transport := &http.Transport{MaxIdleConns: cfg.Clients + 4, MaxIdleConnsPerHost: cfg.Clients + 4}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	queries := lslod.Queries()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		ttfas     []time.Duration
		rejected  int
		answers   int
		firstErr  error
	)
	next := make(chan int, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newClientScratch()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				q := queries[i%len(queries)]
				lat, ttfa, nAnswers, rej, err := serveOneQuery(ctx, client, ts.URL, q.Text, scratch)
				mu.Lock()
				rejected += rej
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", q.ID, err)
					}
				} else {
					latencies = append(latencies, lat)
					ttfas = append(ttfas, ttfa)
					answers += nAnswers
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	res := &ServeResult{
		Network:       cfg.Network.Name,
		Clients:       cfg.Clients,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		SourceLimit:   cfg.SourceLimit,
		Completed:     len(latencies),
		Rejected:      rejected,
		Wall:          wall,
		PeakExecuting: srv.Stats().PeakExecuting,
		Answers:       answers,
	}
	if wall > 0 {
		res.Throughput = float64(len(latencies)) / wall.Seconds()
	}
	res.LatencyP50 = quantileDuration(latencies, 0.50)
	res.LatencyP95 = quantileDuration(latencies, 0.95)
	res.LatencyMean = meanDuration(latencies)
	res.TTFAP50 = quantileDuration(ttfas, 0.50)
	res.TTFAP95 = quantileDuration(ttfas, 0.95)
	return res, nil
}

// serveOneQuery issues one query, retrying on 503 (after the server's
// Retry-After hint, capped small so experiments stay fast). It returns the
// final attempt's latency, its time-to-first-binding, the number of
// bindings, and how many 503 rejections it absorbed.
func serveOneQuery(ctx context.Context, client *http.Client, baseURL, query string, scratch *clientScratch) (lat, ttfa time.Duration, answers, rejected int, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, rejected, err
		}
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/sparql",
			bytes.NewReader([]byte(query)))
		if err != nil {
			return 0, 0, 0, rejected, err
		}
		req.Header.Set("Content-Type", "application/sparql-query")
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, 0, rejected, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected++
			wait := 5 * time.Millisecond
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * 100 * time.Millisecond // compressed backoff
				}
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, 0, 0, rejected, ctx.Err()
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return 0, 0, 0, rejected, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		// Scan the body as it streams instead of accumulating it: matches
		// spanning a chunk boundary are caught by carrying the tail of the
		// previous chunk in front of the next, and a match is only counted
		// when it ends past that carried tail (it was counted last round
		// otherwise). Retaining whole response bodies across 8 concurrent
		// clients dominated the harness's allocations and skewed the
		// in-process throughput measurement with client-side GC work.
		var (
			win       = scratch.win[:0]
			chunk     = scratch.chunk
			sawTTFA   bool
			typeCount int
		)
		for {
			n, rerr := resp.Body.Read(chunk)
			if n > 0 {
				tail := len(win)
				win = append(win, chunk[:n]...)
				if !sawTTFA && bytes.Contains(win, needleTTFA) {
					ttfa = time.Since(start)
					sawTTFA = true
				}
				typeCount += countEnding(win, needleType, tail)
				// Keep just enough bytes for a boundary-spanning match.
				if keep := len(needleTTFA) - 1; len(win) > keep {
					win = win[:copy(win, win[len(win)-keep:])]
				}
				scratch.win = win
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				resp.Body.Close()
				return 0, 0, 0, rejected, rerr
			}
		}
		resp.Body.Close()
		lat = time.Since(start)
		if !sawTTFA {
			ttfa = lat // empty result: first "answer" is completion
		}
		answers = typeCount // term objects; lower bound > 0 iff bindings
		if n := resp.Trailer.Get("X-Ontario-Answers"); n != "" {
			if v, err := strconv.Atoi(n); err == nil {
				answers = v
			}
		}
		return lat, ttfa, answers, rejected, nil
	}
}

// needleTTFA marks the first streamed binding object; needleType counts
// term objects (one per bound variable of every solution).
var (
	needleTTFA = []byte(`"bindings":[{`)
	needleType = []byte(`"type"`)
)

// clientScratch is one client goroutine's reusable scan state: the read
// chunk and the carry window survive across requests so the load
// generator allocates nothing per response.
type clientScratch struct {
	win   []byte
	chunk []byte
}

func newClientScratch() *clientScratch {
	return &clientScratch{win: make([]byte, 0, len(needleTTFA)), chunk: make([]byte, 8192)}
}

// countEnding counts the occurrences of needle in win that end past the
// first tail bytes; matches ending inside the carried tail were counted
// when those bytes were last scanned.
func countEnding(win, needle []byte, tail int) int {
	count := 0
	from := tail - len(needle) + 1
	if from < 0 {
		from = 0
	}
	for {
		i := bytes.Index(win[from:], needle)
		if i < 0 {
			return count
		}
		count++
		from += i + len(needle)
	}
}

func quantileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// WriteServeTable renders serving-load results as an aligned text table.
func WriteServeTable(w io.Writer, rows []*ServeResult) {
	fmt.Fprintf(w, "%-10s %8s %5s %7s %9s %9s %10s %10s %10s %10s %6s\n",
		"network", "clients", "C", "done", "rej-503", "qps", "p50", "p95", "ttfa-p50", "ttfa-p95", "peak")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 104))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %5d %7d %9d %9.1f %10s %10s %10s %10s %6d\n",
			r.Network, r.Clients, r.MaxConcurrent, r.Completed, r.Rejected, r.Throughput,
			r.LatencyP50.Round(10*time.Microsecond), r.LatencyP95.Round(10*time.Microsecond),
			r.TTFAP50.Round(10*time.Microsecond), r.TTFAP95.Round(10*time.Microsecond),
			r.PeakExecuting)
	}
}
