package exp

import (
	"context"
	"os"
	"runtime/pprof"
	"testing"

	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

// TestProfileServe is a manual profiling harness: ONTARIO_PROFILE=<path>
// runs the exchange serve workload repeatedly under the CPU profiler.
func TestProfileServe(t *testing.T) {
	path := os.Getenv("ONTARIO_PROFILE")
	if path == "" {
		t.Skip("set ONTARIO_PROFILE to run")
	}
	lake, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(lake)
	r.NetworkScale = 0
	r.Seed = 1
	f, _ := os.Create(path)
	pprof.StartCPUProfile(f)
	for i := 0; i < 40; i++ {
		_, err = r.RunServe(context.Background(), ServeConfig{
			Clients: 8, Requests: 40, MaxConcurrent: 4, QueueDepth: 16,
			SourceLimit: 4, Network: netsim.NoDelay, BatchSize: 64, ProbeParallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()
	f.Close()
}
