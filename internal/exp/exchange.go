package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
)

// ExchangeConfig parameterizes the vectorized-exchange sweep: the serve
// workload of Serve is repeated for every batch size × probe parallelism
// combination, measuring how batching amortizes the data plane's per-tuple
// costs and how morsel-parallel probing scales the symmetric hash join.
type ExchangeConfig struct {
	// Serve is the base serving workload (clients, requests, admission
	// control, network). Its BatchSize/ProbeParallelism are overwritten by
	// the sweep.
	Serve ServeConfig
	// BatchSizes are the exchange batch sizes to sweep (default
	// 1, 16, 64, 256, 1024; 1 is the binding-at-a-time baseline).
	BatchSizes []int
	// Parallelism are the probe-worker counts to sweep (default 1, 4).
	Parallelism []int
}

// ExchangeResult is one cell of the sweep: the serving-load measurements
// plus the swept parameters and the headline bindings-per-second rate.
type ExchangeResult struct {
	BatchSize        int     `json:"batch_size"`
	ProbeParallelism int     `json:"probe_parallelism"`
	BindingsPerSec   float64 `json:"bindings_per_sec"`
	*ServeResult
}

// RunExchange sweeps batch size × probe parallelism over the serving
// workload. Rows are ordered parallelism-major, batch-minor, so each
// parallelism level reads as one batch-size curve.
func (r *Runner) RunExchange(ctx context.Context, cfg ExchangeConfig) ([]*ExchangeResult, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 16, 64, 256, 1024}
	}
	if len(cfg.Parallelism) == 0 {
		cfg.Parallelism = []int{1, 4}
	}
	var out []*ExchangeResult
	for _, par := range cfg.Parallelism {
		for _, bs := range cfg.BatchSizes {
			sc := cfg.Serve
			sc.BatchSize = bs
			sc.ProbeParallelism = par
			res, err := r.RunServe(ctx, sc)
			if err != nil {
				return nil, fmt.Errorf("exchange batch=%d par=%d: %w", bs, par, err)
			}
			cell := &ExchangeResult{BatchSize: bs, ProbeParallelism: par, ServeResult: res}
			if res.Wall > 0 {
				cell.BindingsPerSec = float64(res.Answers) / res.Wall.Seconds()
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// WriteExchangeTable renders the sweep as an aligned text table.
func WriteExchangeTable(w io.Writer, rows []*ExchangeResult) {
	fmt.Fprintf(w, "%-7s %5s %9s %12s %9s %10s %10s %10s\n",
		"batch", "par", "done", "bindings/s", "qps", "p50", "p95", "ttfa-p50")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 80))
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %5d %9d %12.0f %9.1f %10s %10s %10s\n",
			r.BatchSize, r.ProbeParallelism, r.Completed, r.BindingsPerSec, r.Throughput,
			r.LatencyP50.Round(10*time.Microsecond), r.LatencyP95.Round(10*time.Microsecond),
			r.TTFAP50.Round(10*time.Microsecond))
	}
}

// WriteExchangeJSON writes the sweep as dir/BENCH_exchange.json and
// returns the written path.
func WriteExchangeJSON(dir string, rows []*ExchangeResult) (string, error) {
	return writeJSONDoc(dir, "exchange", rows)
}
