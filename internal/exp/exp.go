// Package exp is the experiment harness: it reruns the paper's evaluation
// (the eight configurations of Section 3, the Figure-2 answer traces, and
// the narrated per-heuristic findings) against the synthetic LSLOD lake and
// renders the result tables.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ontario"
	"ontario/internal/core"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/trace"
)

// Config is one experiment cell.
type Config struct {
	QueryID    string
	Aware      bool
	Network    netsim.Profile
	Naive      bool // naive SPARQL-to-SQL translation for merged stars
	JoinOp     core.JoinOperator
	Heuristic2 bool // use the network-aware H2 filter policy
	// BindBlockSize/BindConcurrency parameterize the block bind join
	// (0 keeps the engine defaults).
	BindBlockSize   int
	BindConcurrency int
	// Optimizer overrides the join-ordering/operator-selection strategy
	// ("cost" or "greedy"); empty keeps the plan mode's default.
	Optimizer string
}

// Label renders the configuration for tables.
func (c Config) Label() string {
	mode := "unaware"
	if c.Aware {
		mode = "aware"
	}
	extra := ""
	if c.Naive {
		extra += "/naive"
	}
	if c.Heuristic2 {
		extra += "/h2"
	}
	if c.JoinOp == core.JoinBind {
		extra += "/bind"
	}
	if c.JoinOp == core.JoinBlockBind {
		extra += fmt.Sprintf("/block-bind(B=%d)", c.effectiveBlock())
	}
	if c.Optimizer != "" {
		extra += "/" + c.Optimizer
	}
	return fmt.Sprintf("%s %s%s [%s]", c.QueryID, mode, extra, c.Network.Name)
}

func (c Config) effectiveBlock() int {
	if c.BindBlockSize > 0 {
		return c.BindBlockSize
	}
	return core.DefaultBindBlockSize
}

// Row is one measured experiment cell.
type Row struct {
	Config  Config
	Trace   *trace.Trace
	Answers int
	// Messages is the number of simulated network messages (transferred
	// intermediate results).
	Messages int
	// SimulatedDelay is the total sampled network latency.
	SimulatedDelay time.Duration
}

// Runner executes experiment cells against one lake.
type Runner struct {
	Lake *lslod.Lake
	// NetworkScale shrinks real sleeping; 1.0 reproduces sampled delays.
	NetworkScale float64
	Seed         int64
	// BindConcurrency bounds in-flight block bind-join requests for cells
	// that do not set their own (0 keeps the engine default).
	BindConcurrency int
}

// NewRunner returns a runner with real-time network delays.
func NewRunner(lake *lslod.Lake) *Runner {
	return &Runner{Lake: lake, NetworkScale: 1.0, Seed: 1}
}

// Run executes one cell.
func (r *Runner) Run(ctx context.Context, cfg Config) (*Row, error) {
	if cfg.BindConcurrency == 0 {
		cfg.BindConcurrency = r.BindConcurrency
	}
	eng := ontario.New(r.Lake.Lake)
	opts := []ontario.Option{
		ontario.WithNetwork(pubProfile(cfg.Network)),
		ontario.WithNetworkScale(r.NetworkScale),
		ontario.WithSeed(r.Seed),
	}
	if cfg.Aware {
		opts = append(opts, ontario.WithAwarePlan())
	} else {
		opts = append(opts, ontario.WithUnawarePlan())
	}
	if cfg.Heuristic2 {
		opts = append(opts, ontario.WithHeuristic2())
	}
	if cfg.Naive {
		opts = append(opts, ontario.WithNaiveTranslation())
	}
	if cfg.JoinOp != core.JoinSymmetricHash {
		opts = append(opts, ontario.WithJoinOperator(pubJoin(cfg.JoinOp)))
	}
	if cfg.BindBlockSize > 0 {
		opts = append(opts, ontario.WithBindBlockSize(cfg.BindBlockSize))
	}
	if cfg.BindConcurrency > 0 {
		opts = append(opts, ontario.WithBindConcurrency(cfg.BindConcurrency))
	}
	if cfg.Optimizer != "" {
		mode, err := ontario.OptimizerByName(cfg.Optimizer)
		if err != nil {
			return nil, err
		}
		opts = append(opts, ontario.WithOptimizer(mode))
	}
	res, err := eng.Query(ctx, lslod.QueryText(cfg.QueryID), opts...)
	if err != nil {
		return nil, err
	}
	// The trace baseline is execution start (Query returns once the
	// execution is launched), matching the paper's measurements: parse and
	// plan time is excluded.
	start := time.Now()
	tr := &trace.Trace{Label: cfg.Label()}
	n := 0
	for res.Next() {
		n++
		tr.Points = append(tr.Points, trace.Point{Elapsed: time.Since(start), Count: n})
	}
	if err := res.Err(); err != nil {
		res.Close()
		return nil, err
	}
	tr.Total = time.Since(start)
	res.Close()
	st := res.Stats()
	return &Row{
		Config:         cfg,
		Trace:          tr,
		Answers:        st.Answers,
		Messages:       st.Messages,
		SimulatedDelay: st.SimulatedDelay,
	}, nil
}

// pubProfile converts an internal network profile into the public one.
func pubProfile(p netsim.Profile) ontario.Profile {
	return ontario.Profile{Name: p.Name, Alpha: p.Alpha, Beta: p.Beta}
}

// pubJoin converts an internal join-operator selector into the public one.
func pubJoin(op core.JoinOperator) ontario.JoinOperator {
	switch op {
	case core.JoinNestedLoop:
		return ontario.JoinNestedLoop
	case core.JoinBind:
		return ontario.JoinBind
	case core.JoinBlockBind:
		return ontario.JoinBlockBind
	default:
		return ontario.JoinSymmetricHash
	}
}

// GridConfigs returns the paper's eight configurations (2 QEP types × 4
// network settings) for every query.
func GridConfigs() []Config {
	var out []Config
	for _, q := range lslod.Queries() {
		for _, aware := range []bool{false, true} {
			for _, net := range netsim.Profiles() {
				out = append(out, Config{QueryID: q.ID, Aware: aware, Network: net})
			}
		}
	}
	return out
}

// RunGrid executes the full grid (E3).
func (r *Runner) RunGrid(ctx context.Context) ([]*Row, error) {
	var rows []*Row
	for _, cfg := range GridConfigs() {
		row, err := r.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFig2 executes Q3 under both QEP types and all four networks and
// returns the answer traces (E2, Figure 2).
func (r *Runner) RunFig2(ctx context.Context) ([]*Row, error) {
	var rows []*Row
	for _, aware := range []bool{false, true} {
		for _, net := range netsim.Profiles() {
			row, err := r.Run(ctx, Config{QueryID: "Q3", Aware: aware, Network: net})
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunH1 executes the Q2 translation-sensitivity experiment (E6): unaware
// vs aware-with-naive-translation vs aware-with-optimized-translation.
func (r *Runner) RunH1(ctx context.Context, net netsim.Profile) ([]*Row, error) {
	configs := []Config{
		{QueryID: "Q2", Aware: false, Network: net},
		{QueryID: "Q2", Aware: true, Naive: true, Network: net},
		{QueryID: "Q2", Aware: true, Network: net},
	}
	var rows []*Row
	for _, cfg := range configs {
		row, err := r.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunH2 executes the filter-placement experiment (E4/E5) for Q1 and Q3
// across all networks, comparing engine-level vs pushed filters.
func (r *Runner) RunH2(ctx context.Context) ([]*Row, error) {
	var rows []*Row
	for _, q := range []string{"Q1", "Q3"} {
		for _, net := range netsim.Profiles() {
			for _, aware := range []bool{false, true} {
				row, err := r.Run(ctx, Config{QueryID: q, Aware: aware, Network: net})
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// RunBindJoin compares the sequential bind join against the block bind
// join (several block sizes) on every benchmark query: the block variant
// answers ⌈n/B⌉ multi-seed requests where the sequential operator issues n,
// which the messages column makes directly visible.
func (r *Runner) RunBindJoin(ctx context.Context, net netsim.Profile, blockSizes []int) ([]*Row, error) {
	if len(blockSizes) == 0 {
		blockSizes = []int{core.DefaultBindBlockSize}
	}
	var rows []*Row
	for _, q := range lslod.Queries() {
		seq, err := r.Run(ctx, Config{QueryID: q.ID, Aware: true, Network: net, JoinOp: core.JoinBind, BindBlockSize: 1})
		if err != nil {
			return nil, err
		}
		rows = append(rows, seq)
		for _, b := range blockSizes {
			blk, err := r.Run(ctx, Config{QueryID: q.ID, Aware: true, Network: net, JoinOp: core.JoinBlockBind, BindBlockSize: b})
			if err != nil {
				return nil, err
			}
			rows = append(rows, blk)
		}
	}
	return rows, nil
}

// RunOptimizer compares cost-based ordering + per-join operator selection
// against the greedy baseline on every benchmark query (aware plans): the
// messages column shows the transferred intermediate results, where the
// cost optimizer must never lose and should win whenever a plan has
// engine-level joins.
func (r *Runner) RunOptimizer(ctx context.Context, net netsim.Profile) ([]*Row, error) {
	var rows []*Row
	for _, q := range lslod.Queries() {
		for _, opt := range []string{"greedy", "cost"} {
			row, err := r.Run(ctx, Config{QueryID: q.ID, Aware: true, Network: net, Optimizer: opt})
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteTable renders rows as an aligned text table.
func WriteTable(w io.Writer, rows []*Row) {
	fmt.Fprintf(w, "%-36s %12s %12s %9s %10s %14s\n",
		"configuration", "exec-time", "first-ans", "answers", "messages", "net-delay")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 98))
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %12s %12s %9d %10d %14s\n",
			r.Config.Label(),
			r.Trace.Total.Round(10*time.Microsecond),
			r.Trace.TimeToFirst().Round(10*time.Microsecond),
			r.Answers, r.Messages,
			r.SimulatedDelay.Round(10*time.Microsecond))
	}
}

// WriteTraceCSV renders the answer traces of all rows as CSV.
func WriteTraceCSV(w io.Writer, rows []*Row) error {
	if _, err := fmt.Fprintln(w, "label,elapsed_ms,answer"); err != nil {
		return err
	}
	for _, r := range rows {
		for _, p := range r.Trace.Points {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%d\n", r.Trace.Label, float64(p.Elapsed)/1e6, p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Speedup summarizes aware-vs-unaware pairs: for each (query, network) it
// reports unaware/aware execution-time ratios.
type Speedup struct {
	QueryID string
	Network string
	Unaware time.Duration
	Aware   time.Duration
	Ratio   float64
}

// Speedups pairs grid rows into speedup summaries.
func Speedups(rows []*Row) []Speedup {
	type key struct{ q, n string }
	un := map[key]time.Duration{}
	aw := map[key]time.Duration{}
	for _, r := range rows {
		k := key{r.Config.QueryID, r.Config.Network.Name}
		if r.Config.Aware {
			aw[k] = r.Trace.Total
		} else {
			un[k] = r.Trace.Total
		}
	}
	var out []Speedup
	for k, u := range un {
		a, ok := aw[k]
		if !ok {
			continue
		}
		s := Speedup{QueryID: k.q, Network: k.n, Unaware: u, Aware: a}
		if a > 0 {
			s.Ratio = float64(u) / float64(a)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryID != out[j].QueryID {
			return out[i].QueryID < out[j].QueryID
		}
		return out[i].Network < out[j].Network
	})
	return out
}

// WriteSpeedups renders the speedup table.
func WriteSpeedups(w io.Writer, sps []Speedup) {
	fmt.Fprintf(w, "%-6s %-10s %12s %12s %8s\n", "query", "network", "unaware", "aware", "ratio")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 54))
	for _, s := range sps {
		fmt.Fprintf(w, "%-6s %-10s %12s %12s %7.2fx\n",
			s.QueryID, s.Network,
			s.Unaware.Round(10*time.Microsecond), s.Aware.Round(10*time.Microsecond), s.Ratio)
	}
}
