package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

// ColumnarConfig parameterizes the data-plane ablation: the LSLOD query
// mix is executed in-process — no HTTP, no admission control — under both
// exchanges (the row-at-a-time reference pipeline and the default
// dictionary-encoded columnar one) for every batch size, isolating the
// per-tuple cost of the exchange itself from the serving layer.
type ColumnarConfig struct {
	// BatchSizes are the exchange batch sizes to sweep (default
	// 1, 16, 64, 256).
	BatchSizes []int
	// Repeats is how many times the full query mix runs per cell
	// (default 3).
	Repeats int
	// Network is the simulated network profile (default No Delay, so the
	// sweep measures the engine, not the sleeps).
	Network netsim.Profile
	// ProbeParallelism sets the hash join's probe workers (0 = default).
	ProbeParallelism int
}

// ColumnarResult is one cell: an exchange × batch size combination with
// its headline bindings-per-second rate over the whole query mix.
type ColumnarResult struct {
	Exchange         string        `json:"exchange"` // "row" | "columnar"
	BatchSize        int           `json:"batch_size"`
	ProbeParallelism int           `json:"probe_parallelism"`
	Queries          int           `json:"queries"`
	Answers          int           `json:"answers"`
	Wall             time.Duration `json:"wall_ns"`
	BindingsPerSec   float64       `json:"bindings_per_sec"`
}

// RunColumnar sweeps exchange × batch size over the LSLOD query mix. Rows
// come out exchange-major so each exchange reads as one batch-size curve,
// row first (the baseline the columnar numbers are compared against).
func (r *Runner) RunColumnar(ctx context.Context, cfg ColumnarConfig) ([]*ColumnarResult, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 16, 64, 256}
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 3
	}
	rowOpt, _ := bridge.RowExchangeOption.(ontario.Option)
	var out []*ColumnarResult
	for _, exchange := range []string{"row", "columnar"} {
		for _, bs := range cfg.BatchSizes {
			cell, err := r.runColumnarCell(ctx, cfg, exchange, bs, rowOpt)
			if err != nil {
				return nil, fmt.Errorf("columnar %s batch=%d: %w", exchange, bs, err)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func (r *Runner) runColumnarCell(ctx context.Context, cfg ColumnarConfig, exchange string, batch int, rowOpt ontario.Option) (*ColumnarResult, error) {
	eng := ontario.New(r.Lake.Lake)
	opts := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(pubProfile(cfg.Network)),
		ontario.WithNetworkScale(r.NetworkScale),
		ontario.WithSeed(r.Seed),
		ontario.WithBatchSize(batch),
	}
	if cfg.ProbeParallelism > 0 {
		opts = append(opts, ontario.WithProbeParallelism(cfg.ProbeParallelism))
	}
	if exchange == "row" {
		if rowOpt == nil {
			return nil, fmt.Errorf("row exchange option not registered")
		}
		opts = append(opts, rowOpt)
	}
	queries := lslod.Queries()
	answers, ran := 0, 0
	start := time.Now()
	for rep := 0; rep < cfg.Repeats; rep++ {
		for _, q := range queries {
			res, err := eng.Query(ctx, q.Text, opts...)
			if err != nil {
				return nil, err
			}
			for res.Next() {
				answers++
			}
			err = res.Err()
			res.Close()
			if err != nil {
				return nil, err
			}
			ran++
		}
	}
	wall := time.Since(start)
	cell := &ColumnarResult{
		Exchange:         exchange,
		BatchSize:        batch,
		ProbeParallelism: cfg.ProbeParallelism,
		Queries:          ran,
		Answers:          answers,
		Wall:             wall,
	}
	if wall > 0 {
		cell.BindingsPerSec = float64(answers) / wall.Seconds()
	}
	return cell, nil
}

// WriteColumnarTable renders the ablation as an aligned text table with
// the columnar/row speedup per batch size.
func WriteColumnarTable(w io.Writer, rows []*ColumnarResult) {
	rowRate := map[int]float64{}
	for _, r := range rows {
		if r.Exchange == "row" {
			rowRate[r.BatchSize] = r.BindingsPerSec
		}
	}
	fmt.Fprintf(w, "%-10s %7s %5s %9s %9s %12s %12s %9s\n",
		"exchange", "batch", "par", "queries", "answers", "wall", "bindings/s", "vs row")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 80))
	for _, r := range rows {
		speed := "-"
		if base, ok := rowRate[r.BatchSize]; ok && base > 0 && r.Exchange != "row" {
			speed = fmt.Sprintf("%.2fx", r.BindingsPerSec/base)
		}
		fmt.Fprintf(w, "%-10s %7d %5d %9d %9d %12s %12.0f %9s\n",
			r.Exchange, r.BatchSize, r.ProbeParallelism, r.Queries, r.Answers,
			r.Wall.Round(10*time.Microsecond), r.BindingsPerSec, speed)
	}
}

// WriteColumnarJSON writes the sweep as dir/BENCH_columnar.json and
// returns the written path.
func WriteColumnarJSON(dir string, rows []*ColumnarResult) (string, error) {
	return writeJSONDoc(dir, "columnar", rows)
}
