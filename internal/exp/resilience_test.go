package exp

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunResilience drives the full live-federation experiment end to end:
// two in-process ontario-server nodes over real HTTP, federated by a front
// engine through the remote SPARQL wrapper. It pins the PR's acceptance
// behaviours: a healthy federation answers completely, a flaky backend
// (every other request 503s) still answers completely via retries, and a
// dead backend opens the circuit breaker and fails fast instead of
// retrying forever.
func TestRunResilience(t *testing.T) {
	cfg := ResilienceExpConfig{People: 12, Orgs: 4, SlowDelay: 5 * time.Millisecond}
	rows, err := RunResilience(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ResilienceResult{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	for _, name := range []string{"healthy", "slow", "flaky", "down"} {
		if byName[name] == nil {
			t.Fatalf("scenario %s missing from %+v", name, rows)
		}
	}
	wantAnswers := cfg.People * 3 // three queries per scenario

	healthy := byName["healthy"]
	if healthy.Err != "" || healthy.Answers != wantAnswers {
		t.Errorf("healthy: answers=%d err=%q, want %d answers and no error", healthy.Answers, healthy.Err, wantAnswers)
	}
	if healthy.Retries != 0 || healthy.Breaker != "closed" {
		t.Errorf("healthy: retries=%d breaker=%s, want 0/closed", healthy.Retries, healthy.Breaker)
	}

	slow := byName["slow"]
	if slow.Err != "" || slow.Answers != wantAnswers {
		t.Errorf("slow: answers=%d err=%q, want %d answers and no error", slow.Answers, slow.Err, wantAnswers)
	}
	if slow.MeasuredLatencyMS < float64(cfg.SlowDelay)/float64(time.Millisecond) {
		t.Errorf("slow: measured latency %.2fms, want >= injected %v", slow.MeasuredLatencyMS, cfg.SlowDelay)
	}

	flaky := byName["flaky"]
	if flaky.Err != "" || flaky.Answers != wantAnswers {
		t.Errorf("flaky: answers=%d err=%q, want %d answers and no error (retries should mask the 503s)",
			flaky.Answers, flaky.Err, wantAnswers)
	}
	if flaky.Retries == 0 {
		t.Errorf("flaky: no retries recorded despite injected 503s: %+v", flaky)
	}
	if flaky.Failures == 0 {
		t.Errorf("flaky: no failures recorded despite injected 503s: %+v", flaky)
	}

	down := byName["down"]
	if down.Err == "" || down.Answers != 0 {
		t.Errorf("down: answers=%d err=%q, want failure with 0 answers", down.Answers, down.Err)
	}
	if down.Breaker != "open" {
		t.Errorf("down: breaker=%s, want open after consecutive connection failures", down.Breaker)
	}
	// Under an open breaker the last query must fail fast — no per-attempt
	// dials, no backoff sleeps.
	if down.LastQueryMS >= down.FirstQueryMS && down.LastQueryMS > 50 {
		t.Errorf("down: last query took %.1fms (first %.1fms), want a fast-fail under the open breaker",
			down.LastQueryMS, down.FirstQueryMS)
	}
}

// TestWriteResilienceJSON pins the bench artifact shape.
func TestWriteResilienceJSON(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteResilienceJSON(dir, []*ResilienceResult{{Scenario: "healthy", Queries: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_resilience.json") {
		t.Fatalf("path = %s", path)
	}
}
