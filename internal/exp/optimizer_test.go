package exp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ontario/internal/netsim"
)

// TestRunOptimizerExperiment drives the bench experiment end to end and
// asserts its headline property: per query, cost-based planning never
// sends more messages than greedy, and the answer counts agree.
func TestRunOptimizerExperiment(t *testing.T) {
	r := testRunner(t)
	rows, err := r.RunOptimizer(context.Background(), netsim.NoDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10 (5 queries x greedy/cost)", len(rows))
	}
	strictlyFewer := 0
	for i := 0; i < len(rows); i += 2 {
		greedy, cost := rows[i], rows[i+1]
		if greedy.Config.Optimizer != "greedy" || cost.Config.Optimizer != "cost" {
			t.Fatalf("row pair out of order: %s / %s", greedy.Config.Label(), cost.Config.Label())
		}
		if greedy.Config.QueryID != cost.Config.QueryID {
			t.Fatalf("row pair mixes queries: %s / %s", greedy.Config.Label(), cost.Config.Label())
		}
		if cost.Answers != greedy.Answers {
			t.Errorf("%s: cost answered %d, greedy %d", cost.Config.QueryID, cost.Answers, greedy.Answers)
		}
		if cost.Messages > greedy.Messages {
			t.Errorf("%s: cost sent more messages (%d > %d)", cost.Config.QueryID, cost.Messages, greedy.Messages)
		}
		if cost.Messages < greedy.Messages {
			strictlyFewer++
		}
	}
	if strictlyFewer < 2 {
		t.Errorf("cost optimizer strictly reduced messages on %d queries, want >= 2", strictlyFewer)
	}

	dir := t.TempDir()
	path, err := WriteRowsJSON(dir, "optimizer", rows)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_optimizer.json" {
		t.Errorf("json path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []JSONRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 10 {
		t.Fatalf("json has %d rows", len(doc.Rows))
	}
	if doc.Rows[0].Optimizer != "greedy" || doc.Rows[1].Optimizer != "cost" {
		t.Errorf("json rows missing optimizer field: %+v %+v", doc.Rows[0], doc.Rows[1])
	}
	if !strings.Contains(doc.Rows[1].Label, "/cost") {
		t.Errorf("cost label = %s", doc.Rows[1].Label)
	}
}
