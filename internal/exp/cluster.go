package exp

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/cluster"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/server"
)

// ClusterExpConfig parameterizes the scale-out experiment: the LSLOD query
// mix runs against a coordinator distributing execution over N in-process
// workers, for each N in Workers, so the 1→N scaling curve of the shuffle
// data plane is measured end to end (partitioned scans, dictionary-delta
// sideband, distributed symmetric-hash joins).
type ClusterExpConfig struct {
	// Scale is the LSLOD data scale of every node's lake.
	Scale lslod.Scale
	// Seed fixes data generation (every worker partitions the same lake).
	Seed int64
	// Workers lists the pool sizes to measure (default 1,2,3,4). Size 1 is
	// the scale-out baseline: one worker owning the whole lake behind the
	// same wire protocol, so the curve isolates partitioning from the
	// fixed cost of distribution itself.
	Workers []int
	// Clients is the number of concurrent HTTP clients (default 4);
	// Requests the total queries completed per cell (default 20).
	Clients  int
	Requests int
	// Network is the simulated source-latency profile of every query and
	// NetworkScale its sleep multiplier. The zero profile means no
	// simulated latency — that cell measures only the distributed data
	// plane, which on a single machine is bounded by local CPU; with a
	// profile, partitioned workers overlap their sources' latency, which
	// is the scale-out regime the paper's federation targets.
	Network      netsim.Profile
	NetworkScale float64
	// Timeout is the per-query deadline (default 60s).
	Timeout time.Duration
}

// ClusterResult is one measured pool-size cell.
type ClusterResult struct {
	Workers        int           `json:"workers"`
	Network        string        `json:"network"`
	NetworkScale   float64       `json:"network_scale"`
	Completed      int           `json:"completed"`
	Wall           time.Duration `json:"wall_ns"`
	Throughput     float64       `json:"throughput_qps"`
	Answers        int           `json:"answers"`
	BindingsPerSec float64       `json:"bindings_per_sec"`
	LatencyP50     time.Duration `json:"latency_p50_ns"`
	LatencyP95     time.Duration `json:"latency_p95_ns"`
	TTFAP50        time.Duration `json:"ttfa_p50_ns"`
	// ShuffledBatches/ShuffledBytes count ALL wire traffic between the
	// coordinator and the pool, both directions (results included), so
	// the series stays comparable with the PR 9 dial-per-task baseline.
	ShuffledBatches int64 `json:"shuffled_batches"`
	ShuffledBytes   int64 `json:"shuffled_bytes"`
	// ShuffledBytesPerAnswer normalizes the wire traffic by the answers
	// produced — the headline the persistent links and co-partitioned
	// pushdown move.
	ShuffledBytesPerAnswer float64 `json:"shuffled_bytes_per_answer"`
	// DictDeltaBytes is the wire spent on dictionary-delta records (term
	// lexical forms); with persistent links this amortizes to ~once per
	// term per link for the whole cell, not once per task.
	DictDeltaBytes int64 `json:"dict_delta_bytes"`
	// Speedup is this cell's bindings/sec over the first cell's.
	Speedup float64 `json:"speedup_vs_first"`
}

// RunCluster measures the scaling curve: for each pool size it boots the
// partitioned workers on loopback listeners, stands up a coordinator
// serving the full catalog over them, and drives the query mix through
// the HTTP endpoint under the configured simulated source-latency
// profile.
func RunCluster(ctx context.Context, cfg ClusterExpConfig) ([]*ClusterResult, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 3, 4}
	}
	if cfg.Network.Name == "" {
		cfg.Network = netsim.NoDelay
	}
	if cfg.Clients < 1 {
		cfg.Clients = 4
	}
	if cfg.Requests < 1 {
		cfg.Requests = 20
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var results []*ClusterResult
	for _, n := range cfg.Workers {
		res, err := runClusterCell(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("cluster of %d: %w", n, err)
		}
		results = append(results, res)
	}
	if len(results) > 0 && results[0].BindingsPerSec > 0 {
		for _, r := range results {
			r.Speedup = r.BindingsPerSec / results[0].BindingsPerSec
		}
	}
	return results, nil
}

func runClusterCell(ctx context.Context, cfg ClusterExpConfig, n int) (*ClusterResult, error) {
	var workers []*cluster.Worker
	defer func() {
		for _, w := range workers {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			w.Shutdown(sctx)
			cancel()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := lslod.BuildLake(cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := cluster.PartitionLake(l.Lake, i, n); err != nil {
			return nil, err
		}
		w, err := cluster.NewWorker(l.Lake, cluster.WorkerConfig{Partition: i, Of: n})
		if err != nil {
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go w.Serve(lis)
		workers = append(workers, w)
		addrs = append(addrs, lis.Addr().String())
	}

	full, err := lslod.BuildLake(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	eng := ontario.New(full.Lake)
	client, err := cluster.NewClient(addrs, cluster.ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	opt, ok := bridge.ClusterOption(client).(ontario.Option)
	if !ok {
		return nil, fmt.Errorf("cluster option bridge unavailable")
	}
	srv := server.New(eng, server.Config{
		MaxConcurrent: cfg.Clients,
		QueryTimeout:  cfg.Timeout,
		DefaultOptions: []ontario.Option{
			ontario.WithAwarePlan(),
			ontario.WithNetwork(pubProfile(cfg.Network)),
			ontario.WithNetworkScale(cfg.NetworkScale),
			ontario.WithSeed(cfg.Seed),
			opt,
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	transport := &http.Transport{MaxIdleConns: cfg.Clients + 4, MaxIdleConnsPerHost: cfg.Clients + 4}
	defer transport.CloseIdleConnections()
	httpClient := &http.Client{Transport: transport}

	queries := lslod.Queries()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		ttfas     []time.Duration
		answers   int
		firstErr  error
	)
	next := make(chan int, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newClientScratch()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				q := queries[i%len(queries)]
				lat, ttfa, nAnswers, _, err := serveOneQuery(ctx, httpClient, ts.URL, q.Text, scratch)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", q.ID, err)
					}
				} else {
					latencies = append(latencies, lat)
					ttfas = append(ttfas, ttfa)
					answers += nAnswers
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	res := &ClusterResult{
		Workers:      n,
		Network:      cfg.Network.Name,
		NetworkScale: cfg.NetworkScale,
		Completed:    len(latencies),
		Wall:         wall,
		Answers:      answers,
	}
	if wall > 0 {
		res.Throughput = float64(len(latencies)) / wall.Seconds()
		res.BindingsPerSec = float64(answers) / wall.Seconds()
	}
	res.LatencyP50 = quantileDuration(latencies, 0.50)
	res.LatencyP95 = quantileDuration(latencies, 0.95)
	res.TTFAP50 = quantileDuration(ttfas, 0.50)
	pctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	for _, ws := range client.Probe(pctx) {
		res.ShuffledBatches += ws.BatchesIn + ws.BatchesOut
		res.ShuffledBytes += ws.BytesIn + ws.BytesOut
		res.DictDeltaBytes += ws.DictDeltaBytes
	}
	cancel()
	if answers > 0 {
		res.ShuffledBytesPerAnswer = float64(res.ShuffledBytes) / float64(answers)
	}
	return res, nil
}

// WriteClusterTable renders the scaling curve as an aligned text table.
func WriteClusterTable(w io.Writer, rows []*ClusterResult) {
	fmt.Fprintf(w, "%-8s %6s %10s %9s %12s %10s %10s %10s %9s %12s %11s %11s %8s\n",
		"workers", "done", "wall", "qps", "bindings/s", "p50", "p95", "ttfa-p50", "batches", "bytes", "bytes/ans", "delta-bytes", "speedup")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 138))
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %6d %10s %9.1f %12.0f %10s %10s %10s %9d %12d %11.1f %11d %7.2fx\n",
			r.Workers, r.Completed, r.Wall.Round(time.Millisecond), r.Throughput, r.BindingsPerSec,
			r.LatencyP50.Round(10*time.Microsecond), r.LatencyP95.Round(10*time.Microsecond),
			r.TTFAP50.Round(10*time.Microsecond), r.ShuffledBatches, r.ShuffledBytes,
			r.ShuffledBytesPerAnswer, r.DictDeltaBytes, r.Speedup)
	}
}

// WriteClusterJSON writes the scaling curve as dir/BENCH_cluster.json and
// returns the written path.
func WriteClusterJSON(dir string, results []*ClusterResult) (string, error) {
	return writeJSONDoc(dir, "cluster", results)
}
