package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	lake, err := lslod.BuildLake(lslod.SmallScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(lake)
	r.NetworkScale = 0
	return r
}

func TestRunSingleCell(t *testing.T) {
	r := testRunner(t)
	row, err := r.Run(context.Background(), Config{QueryID: "Q3", Aware: true, Network: netsim.Gamma2})
	if err != nil {
		t.Fatal(err)
	}
	if row.Answers == 0 || row.Messages == 0 {
		t.Fatalf("empty row: %+v", row)
	}
	if row.SimulatedDelay == 0 {
		t.Error("Gamma2 cell recorded no simulated delay")
	}
	if !strings.Contains(row.Config.Label(), "Q3 aware [Gamma 2]") {
		t.Errorf("label = %s", row.Config.Label())
	}
}

func TestGridConfigs(t *testing.T) {
	cfgs := GridConfigs()
	if len(cfgs) != 5*2*4 {
		t.Fatalf("grid has %d cells, want 40", len(cfgs))
	}
}

func TestAwareNeverTransfersMore(t *testing.T) {
	// Structural claim behind the paper's headline: the aware plan never
	// transfers more intermediate results than the unaware plan.
	r := testRunner(t)
	ctx := context.Background()
	for _, q := range []string{"Q1", "Q2", "Q3", "Q4", "Q5"} {
		un, err := r.Run(ctx, Config{QueryID: q, Aware: false, Network: netsim.NoDelay})
		if err != nil {
			t.Fatal(err)
		}
		aw, err := r.Run(ctx, Config{QueryID: q, Aware: true, Network: netsim.NoDelay})
		if err != nil {
			t.Fatal(err)
		}
		if aw.Answers != un.Answers {
			t.Errorf("%s: answers differ (aware %d, unaware %d)", q, aw.Answers, un.Answers)
		}
		if aw.Messages > un.Messages {
			t.Errorf("%s: aware transfers more (%d > %d)", q, aw.Messages, un.Messages)
		}
	}
}

func TestSimulatedDelayGrowsWithProfile(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	var prev time.Duration
	for _, net := range netsim.Profiles() {
		row, err := r.Run(ctx, Config{QueryID: "Q3", Aware: false, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		if row.SimulatedDelay < prev {
			t.Errorf("%s: simulated delay %v below previous profile %v", net.Name, row.SimulatedDelay, prev)
		}
		prev = row.SimulatedDelay
	}
}

func TestH1RowsOrdering(t *testing.T) {
	r := testRunner(t)
	rows, err := r.RunH1(context.Background(), netsim.Gamma2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("H1 produced %d rows", len(rows))
	}
	unaware, naive, optimized := rows[0], rows[1], rows[2]
	// The optimized pushdown transfers only the final answers; naive
	// transfers every per-star row.
	if optimized.Messages >= naive.Messages {
		t.Errorf("optimized transferred %d >= naive %d", optimized.Messages, naive.Messages)
	}
	if optimized.SimulatedDelay >= unaware.SimulatedDelay {
		t.Errorf("optimized delay %v >= unaware %v", optimized.SimulatedDelay, unaware.SimulatedDelay)
	}
}

func TestSpeedupsPairing(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	var rows []*Row
	for _, aware := range []bool{false, true} {
		row, err := r.Run(ctx, Config{QueryID: "Q2", Aware: aware, Network: netsim.NoDelay})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	sps := Speedups(rows)
	if len(sps) != 1 {
		t.Fatalf("speedups = %+v", sps)
	}
	if sps[0].QueryID != "Q2" || sps[0].Ratio <= 0 {
		t.Errorf("speedup = %+v", sps[0])
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	r := testRunner(t)
	row, err := r.Run(context.Background(), Config{QueryID: "Q1", Aware: true, Network: netsim.NoDelay})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, []*Row{row})
	if !strings.Contains(buf.String(), "Q1 aware [No Delay]") {
		t.Errorf("table output: %s", buf.String())
	}
	buf.Reset()
	if err := WriteTraceCSV(&buf, []*Row{row}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "label,elapsed_ms,answer\n") {
		t.Errorf("csv output: %s", buf.String())
	}
	buf.Reset()
	WriteSpeedups(&buf, []Speedup{{QueryID: "Q1", Network: "No Delay", Unaware: 2, Aware: 1, Ratio: 2}})
	if !strings.Contains(buf.String(), "2.00x") {
		t.Errorf("speedup output: %s", buf.String())
	}
}

func TestRunGridAndFig2Complete(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in short mode")
	}
	r := testRunner(t)
	ctx := context.Background()
	rows, err := r.RunGrid(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("grid produced %d rows, want 40", len(rows))
	}
	sps := Speedups(rows)
	if len(sps) != 20 {
		t.Fatalf("speedups = %d, want 20", len(sps))
	}
	for _, s := range sps {
		if s.Ratio <= 0 {
			t.Errorf("%s/%s: ratio %f", s.QueryID, s.Network, s.Ratio)
		}
	}
	fig2, err := r.RunFig2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2) != 8 {
		t.Fatalf("fig2 produced %d rows, want 8", len(fig2))
	}
	// Every aware cell transfers fewer messages than its unaware pair.
	for i := 0; i < 4; i++ {
		if fig2[4+i].Messages >= fig2[i].Messages {
			t.Errorf("fig2 aware cell %d transfers %d >= unaware %d",
				i, fig2[4+i].Messages, fig2[i].Messages)
		}
	}
	var buf bytes.Buffer
	WriteTable(&buf, fig2)
	if len(strings.Split(buf.String(), "\n")) < 10 {
		t.Error("table too short")
	}
}

func TestRunH2Complete(t *testing.T) {
	r := testRunner(t)
	rows, err := r.RunH2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("h2 produced %d rows, want 16", len(rows))
	}
}

func TestRunUnknownQueryPanics(t *testing.T) {
	r := testRunner(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown query should panic via lslod.Query")
		}
	}()
	_, _ = r.Run(context.Background(), Config{QueryID: "Q77"})
}
