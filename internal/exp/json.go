package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// JSONRow is the machine-readable form of one experiment cell, written by
// WriteRowsJSON so the performance trajectory is recorded across PRs.
type JSONRow struct {
	Label      string  `json:"label"`
	Query      string  `json:"query"`
	Mode       string  `json:"mode"`
	Network    string  `json:"network"`
	ExecMS     float64 `json:"exec_ms"`
	FirstAnsMS float64 `json:"first_answer_ms"`
	Answers    int     `json:"answers"`
	Messages   int     `json:"messages"`
	NetDelayMS float64 `json:"net_delay_ms"`
	JoinOp     string  `json:"join_op,omitempty"`
	Optimizer  string  `json:"optimizer,omitempty"`
	BlockSize  int     `json:"bind_block_size,omitempty"`
	Naive      bool    `json:"naive_translation,omitempty"`
	Heuristic2 bool    `json:"heuristic2,omitempty"`
	DiefAt1s   float64 `json:"dief_at_1s"`
}

type jsonDoc struct {
	Experiment string      `json:"experiment"`
	Generated  string      `json:"generated"`
	Rows       interface{} `json:"rows"`
}

// jsonPath resolves dir/BENCH_<experiment>.json, creating dir if needed.
func jsonPath(dir, experiment string) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", experiment)), nil
}

func writeJSONDoc(dir, experiment string, rows interface{}) (string, error) {
	path, err := jsonPath(dir, experiment)
	if err != nil {
		return "", err
	}
	doc := jsonDoc{
		Experiment: experiment,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Rows:       rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteRowsJSON writes the experiment's rows as dir/BENCH_<experiment>.json
// and returns the written path.
func WriteRowsJSON(dir, experiment string, rows []*Row) (string, error) {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		mode := "unaware"
		if r.Config.Aware {
			mode = "aware"
		}
		jr := JSONRow{
			Label:      r.Config.Label(),
			Query:      r.Config.QueryID,
			Mode:       mode,
			Network:    r.Config.Network.Name,
			ExecMS:     float64(r.Trace.Total) / 1e6,
			FirstAnsMS: float64(r.Trace.TimeToFirst()) / 1e6,
			Answers:    r.Answers,
			Messages:   r.Messages,
			NetDelayMS: float64(r.SimulatedDelay) / 1e6,
			JoinOp:     r.Config.JoinOp.String(),
			Optimizer:  r.Config.Optimizer,
			BlockSize:  r.Config.BindBlockSize,
			Naive:      r.Config.Naive,
			Heuristic2: r.Config.Heuristic2,
			DiefAt1s:   r.Trace.DiefAt(time.Second),
		}
		out = append(out, jr)
	}
	return writeJSONDoc(dir, experiment, out)
}

// WriteServeJSON writes serving-load results as dir/BENCH_serve.json and
// returns the written path.
func WriteServeJSON(dir string, results []*ServeResult) (string, error) {
	return writeJSONDoc(dir, "serve", results)
}
