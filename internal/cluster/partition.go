package cluster

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"ontario/internal/bridge"
	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
)

// PartitionLake filters a freshly built public lake in place down to hash
// partition part of of. Every worker builds the full lake
// deterministically (same scale, same seed) and then drops the rows
// outside its partition, so no data ships at startup. The coordinator
// keeps the unpartitioned lake: planning statistics and molecule
// templates describe the whole lake either way.
func PartitionLake(publicLake any, part, of int) error {
	cat := bridge.LakeCatalog(publicLake)
	if cat == nil {
		return fmt.Errorf("cluster: PartitionLake requires a lake built with lake.NewBuilder")
	}
	return PartitionCatalog(cat, part, of)
}

// PartitionCatalog filters the catalog's sources in place to hash
// partition part of of. RDF graphs partition by subject-term hash;
// relational sources partition base tables by the mapped subject column
// and join side-tables by their FK back to the subject, so every
// subject's whole star — the unit a single-star wrapper request touches —
// lives on exactly one worker. Sources whose model cannot be partitioned
// deterministically (custom and live remote backends) are rejected.
func PartitionCatalog(cat *catalog.Catalog, part, of int) error {
	if of < 1 || part < 0 || part >= of {
		return fmt.Errorf("cluster: invalid partition %d/%d", part, of)
	}
	if of == 1 {
		return nil
	}
	for _, id := range cat.SourceIDs() {
		src := cat.Source(id)
		switch src.Model {
		case catalog.ModelRDF:
			src.Graph = partitionGraph(src.Graph, part, of)
		case catalog.ModelRelational:
			db, err := partitionDB(src, part, of)
			if err != nil {
				return fmt.Errorf("cluster: source %s: %w", id, err)
			}
			src.DB = db
		default:
			return fmt.Errorf("cluster: source %s (%s) cannot be hash-partitioned", id, src.Model)
		}
	}
	return nil
}

// subjectHash hashes an RDF term for partition routing (FNV-1a over the
// full term identity). Routing only needs per-source consistency, so this
// is independent of the engine's dict-ID shard hash.
func subjectHash(t rdf.Term) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(t.Kind)})
	h.Write([]byte(t.Value))
	h.Write([]byte{0})
	h.Write([]byte(t.Datatype))
	h.Write([]byte{0})
	h.Write([]byte(t.Lang))
	return h.Sum64()
}

func partitionGraph(g *rdf.Graph, part, of int) *rdf.Graph {
	out := rdf.NewGraph()
	for _, t := range g.Triples() {
		if subjectHash(t.S)%uint64(of) == uint64(part) {
			out.Add(t)
		}
	}
	return out
}

// valueHash hashes a relational value by its canonical lexical form, so a
// base table's subject column and a side table's FK column route a
// subject's rows identically regardless of column type details.
func valueHash(v rdb.Value) uint64 {
	h := fnv.New64a()
	if v.Null {
		h.Write([]byte("null"))
		return h.Sum64()
	}
	switch v.Type {
	case rdb.TypeString:
		h.Write([]byte(v.Str))
	case rdb.TypeFloat:
		h.Write([]byte(strconv.FormatFloat(v.Float, 'g', -1, 64)))
	case rdb.TypeBool:
		h.Write([]byte(strconv.FormatBool(v.Bool)))
	default:
		h.Write([]byte(strconv.FormatInt(v.Int, 10)))
	}
	return h.Sum64()
}

// partitionDB rebuilds the source's database keeping only the rows of
// this partition. The partition column of each table comes from the
// source's class mappings: the subject column for base tables, the
// join FK for side tables. A table reachable through two mappings with
// different partition columns cannot be split consistently — that is an
// error, not a silent wrong answer.
func partitionDB(src *catalog.Source, part, of int) (*rdb.Database, error) {
	partCol := make(map[string]string)
	assign := func(table, col string) error {
		if table == "" || col == "" {
			return nil
		}
		if prev, ok := partCol[table]; ok && prev != col {
			return fmt.Errorf("table %s has conflicting partition columns %s and %s", table, prev, col)
		}
		partCol[table] = col
		return nil
	}
	for _, cm := range src.Mappings {
		if err := assign(cm.Table, cm.SubjectColumn); err != nil {
			return nil, err
		}
		for _, pm := range cm.Properties {
			if pm.IsJoin() {
				if err := assign(pm.JoinTable, pm.JoinFK); err != nil {
					return nil, err
				}
			}
		}
	}

	out := rdb.NewDatabase(src.DB.Name)
	for _, tn := range src.DB.TableNames() {
		t := src.DB.Table(tn)
		nt, err := out.CreateTable(t.Schema)
		if err != nil {
			return nil, err
		}
		col, mapped := partCol[tn]
		ci := -1
		if mapped {
			ci = t.Schema.ColumnIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("table %s partition column %s not found", tn, col)
			}
		}
		for id := 0; id < t.RowCount(); id++ {
			row := t.Row(id)
			// Unmapped tables are unreachable through the molecule
			// templates; keep them whole on every worker so any future
			// mapping still sees complete data.
			if mapped && valueHash(row[ci])%uint64(of) != uint64(part) {
				continue
			}
			if err := nt.Insert(row); err != nil {
				return nil, err
			}
		}
		for _, spec := range t.Indexes() {
			if err := nt.CreateIndex(spec); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
