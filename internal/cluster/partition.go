package cluster

import (
	"fmt"
	"hash/fnv"

	"ontario/internal/bridge"
	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
)

// PartitionScheme is the routing function recorded on every partitioned
// source: rows route by the FNV-1a hash of the star's subject term. The
// coordinator only pushes co-partitioned joins worker-side when every
// worker reports this scheme.
const PartitionScheme = "subject"

// PartitionLake filters a freshly built public lake in place down to hash
// partition part of of. Every worker builds the full lake
// deterministically (same scale, same seed) and then drops the rows
// outside its partition, so no data ships at startup. The coordinator
// keeps the unpartitioned lake: planning statistics and molecule
// templates describe the whole lake either way.
func PartitionLake(publicLake any, part, of int) error {
	cat := bridge.LakeCatalog(publicLake)
	if cat == nil {
		return fmt.Errorf("cluster: PartitionLake requires a lake built with lake.NewBuilder")
	}
	return PartitionCatalog(cat, part, of)
}

// PartitionCatalog filters the catalog's sources in place to hash
// partition part of of, recording the partitioning key on each source.
// Every model routes by the same function — the subject-term hash: RDF
// graphs partition by the subject of each triple, relational base tables
// by the subject IRI their subject column renders to, and join
// side-tables by the subject IRI of their FK — so a subject's whole star
// lives on exactly one worker and the same entity lands on the same
// partition regardless of which model describes it (the property
// co-partitioned join pushdown relies on). Sources whose model cannot be
// partitioned deterministically (custom and live remote backends) are
// rejected.
func PartitionCatalog(cat *catalog.Catalog, part, of int) error {
	if of < 1 || part < 0 || part >= of {
		return fmt.Errorf("cluster: invalid partition %d/%d", part, of)
	}
	for _, id := range cat.SourceIDs() {
		src := cat.Source(id)
		switch src.Model {
		case catalog.ModelRDF:
			if of > 1 {
				src.Graph = partitionGraph(src.Graph, part, of)
			}
		case catalog.ModelRelational:
			if of > 1 {
				db, err := partitionDB(src, part, of)
				if err != nil {
					return fmt.Errorf("cluster: source %s: %w", id, err)
				}
				src.DB = db
			}
		default:
			if of == 1 {
				// The degenerate single-worker pool holds every source
				// whole; leave exotic models unmarked (no scheme, so no
				// pushdown) instead of rejecting them.
				continue
			}
			return fmt.Errorf("cluster: source %s (%s) cannot be hash-partitioned", id, src.Model)
		}
		src.Partition = &catalog.SourcePartition{Scheme: PartitionScheme, Part: part, Of: of}
	}
	return nil
}

// subjectHash hashes an RDF term for partition routing (FNV-1a over the
// full term identity). Routing only needs per-source consistency, so this
// is independent of the engine's dict-ID shard hash.
func subjectHash(t rdf.Term) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(t.Kind)})
	h.Write([]byte(t.Value))
	h.Write([]byte{0})
	h.Write([]byte(t.Datatype))
	h.Write([]byte{0})
	h.Write([]byte(t.Lang))
	return h.Sum64()
}

func partitionGraph(g *rdf.Graph, part, of int) *rdf.Graph {
	out := rdf.NewGraph()
	for _, t := range g.Triples() {
		if subjectHash(t.S)%uint64(of) == uint64(part) {
			out.Add(t)
		}
	}
	return out
}

// partSpec is the routing rule of one relational table: the column whose
// value renders through template into the subject IRI the row belongs to.
type partSpec struct {
	col      string
	template string
}

// partitionDB rebuilds the source's database keeping only the rows of
// this partition. Rows route by the hash of the subject term they belong
// to: the partition column of each table comes from the source's class
// mappings — the subject column for base tables, the join FK for side
// tables — and its value renders through the class's subject template
// into the same IRI term the RDF model would hash. A table reachable
// through two mappings with different partition rules cannot be split
// consistently — that is an error, not a silent wrong answer.
func partitionDB(src *catalog.Source, part, of int) (*rdb.Database, error) {
	specs := make(map[string]partSpec)
	assign := func(table, col, template string) error {
		if table == "" || col == "" {
			return nil
		}
		spec := partSpec{col: col, template: template}
		if prev, ok := specs[table]; ok && prev != spec {
			return fmt.Errorf("table %s has conflicting partition rules (%s via %q and %s via %q)",
				table, prev.col, prev.template, col, template)
		}
		specs[table] = spec
		return nil
	}
	for _, cm := range src.Mappings {
		if err := assign(cm.Table, cm.SubjectColumn, cm.SubjectTemplate); err != nil {
			return nil, err
		}
		for _, pm := range cm.Properties {
			if pm.IsJoin() {
				if err := assign(pm.JoinTable, pm.JoinFK, cm.SubjectTemplate); err != nil {
					return nil, err
				}
			}
		}
	}

	out := rdb.NewDatabase(src.DB.Name)
	for _, tn := range src.DB.TableNames() {
		t := src.DB.Table(tn)
		nt, err := out.CreateTable(t.Schema)
		if err != nil {
			return nil, err
		}
		spec, mapped := specs[tn]
		ci := -1
		if mapped {
			ci = t.Schema.ColumnIndex(spec.col)
			if ci < 0 {
				return nil, fmt.Errorf("table %s partition column %s not found", tn, spec.col)
			}
		}
		for id := 0; id < t.RowCount(); id++ {
			row := t.Row(id)
			// Unmapped tables are unreachable through the molecule
			// templates; keep them whole on every worker so any future
			// mapping still sees complete data.
			if mapped {
				subject := rdf.NewIRI(catalog.RenderTemplate(spec.template, row[ci].String()))
				if subjectHash(subject)%uint64(of) != uint64(part) {
					continue
				}
			}
			if err := nt.Insert(row); err != nil {
				return nil, err
			}
		}
		for _, spec := range t.Indexes() {
			if err := nt.CreateIndex(spec); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
