package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ontario/internal/core"
	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/wrapper"
)

// ClientConfig configures a coordinator's worker-pool client.
type ClientConfig struct {
	// DialTimeout bounds each worker dial. 0 means 5s.
	DialTimeout time.Duration
	// Resilience shapes the per-worker-link health registry (timeouts,
	// retries, circuit breakers) guarding task setup; the zero value
	// applies the wrapper package's defaults.
	Resilience wrapper.ResilienceConfig
}

// Client is the coordinator side of the cluster: a core.Distributor that
// fans plan fragments out over the worker pool. Task setup (dial plus
// task header) runs behind a per-worker health registry — the same
// breaker/retry layer that guards remote sources — while mid-stream
// failures park on the query's execution and feed the breaker directly.
type Client struct {
	addrs       []string
	dialTimeout time.Duration
	health      *wrapper.HealthRegistry

	counters []workerCounters
}

// workerCounters aggregates one worker link's observed shuffle traffic
// across all of its finished task connections.
type workerCounters struct {
	batchesIn  atomic.Int64
	batchesOut atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	remapN     atomic.Int64
}

// WorkerStatus is one worker link's health and traffic snapshot.
type WorkerStatus struct {
	Addr         string
	Up           bool
	Breaker      string
	Err          string
	Info         *WorkerInfo
	BatchesIn    int64
	BatchesOut   int64
	BytesIn      int64
	BytesOut     int64
	RemapEntries int64
}

// NewClient returns a client over the worker addresses.
func NewClient(addrs []string, cfg ClientConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: NewClient needs at least one worker address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &Client{
		addrs:       addrs,
		dialTimeout: cfg.DialTimeout,
		health:      wrapper.NewHealthRegistry(cfg.Resilience),
		counters:    make([]workerCounters, len(addrs)),
	}, nil
}

// Workers implements core.Distributor.
func (c *Client) Workers() int { return len(c.addrs) }

// Health exposes the worker-link health registry (breaker states and
// measured task-setup latency).
func (c *Client) Health() *wrapper.HealthRegistry { return c.health }

func (c *Client) workerID(i int) string { return fmt.Sprintf("worker:%d", i) }

// taskConn is one open task connection to a worker.
type taskConn struct {
	client *Client
	wi     int
	conn   net.Conn
	enc    *Encoder
	dec    *Decoder

	closeOnce sync.Once
}

// close tears the connection down and folds its codec counters into the
// client's per-worker totals.
func (tc *taskConn) close() {
	tc.closeOnce.Do(func() {
		tc.conn.Close()
		wc := &tc.client.counters[tc.wi]
		wc.batchesIn.Add(tc.dec.Batches())
		wc.batchesOut.Add(tc.enc.Batches())
		wc.bytesIn.Add(tc.dec.Bytes())
		wc.bytesOut.Add(tc.enc.Bytes())
		wc.remapN.Add(tc.dec.RemapEntries())
	})
}

// openTask dials worker wi and writes the task header, behind the
// worker's breaker/retry guard. Retrying here is safe: no result bytes
// have been consumed yet, and an abandoned connection's output dies with
// the connection.
func (c *Client) openTask(ctx context.Context, wi int, h *taskHeader, d *dict.Dict) (*taskConn, error) {
	var tc *taskConn
	err := c.health.Do(ctx, c.workerID(wi), func(ctx context.Context) error {
		dialer := &net.Dialer{Timeout: c.dialTimeout}
		conn, err := dialer.DialContext(ctx, "tcp", c.addrs[wi])
		if err != nil {
			return err
		}
		enc := NewEncoder(conn, d)
		if err := enc.Task(h); err != nil {
			conn.Close()
			return err
		}
		tc = &taskConn{client: c, wi: wi, conn: conn, enc: enc, dec: NewDecoder(conn, d)}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cluster worker %s: %w", c.addrs[wi], err)
	}
	return tc, nil
}

// openAll opens the task on every worker, closing already-open
// connections when any worker fails.
func (c *Client) openAll(ctx context.Context, h *taskHeader, d *dict.Dict) ([]*taskConn, error) {
	conns := make([]*taskConn, len(c.addrs))
	for i := range c.addrs {
		tc, err := c.openTask(ctx, i, h, d)
		if err != nil {
			for _, open := range conns {
				if open != nil {
					open.close()
				}
			}
			return nil, err
		}
		conns[i] = tc
	}
	return conns, nil
}

// readOut relays a task connection's SideOut batches into out until the
// worker's Done frame. A worker-side error frame comes back as an error.
func (tc *taskConn) readOut(ctx context.Context, out *engine.CStream) error {
	for {
		f, err := tc.dec.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case frameBatch:
			if f.Side != SideOut {
				return corrupt("result batch for side %d", f.Side)
			}
			if !out.SendBatch(ctx, f.Batch) {
				return nil
			}
		case frameDone:
			return nil
		case frameError:
			return errors.New(string(f.Payload))
		default:
			return corrupt("unexpected frame type 0x%02x in result stream", f.Type)
		}
	}
}

// Service implements core.Distributor: the request fans out to every
// worker's partition and the result stream is the union of their batches
// (partitions are disjoint, so each answer arrives exactly once).
func (c *Client) Service(ctx context.Context, sourceID string, req *wrapper.Request, schema *engine.Schema, d *dict.Dict, env core.FragmentEnv) (*engine.CStream, error) {
	wreq, err := requestToWire(req)
	if err != nil {
		return nil, err
	}
	h := &taskHeader{Kind: "scan", Scan: &scanTask{
		SourceID: sourceID,
		Req:      wreq,
		Schema:   schema.Vars,
		Env:      envToWire(env),
	}}
	conns, err := c.openAll(ctx, h, d)
	if err != nil {
		return nil, err
	}
	for _, tc := range conns {
		tc.dec.SetSchema(SideOut, schema)
	}
	out := engine.NewCStream(schema, 2*len(conns))
	var wg sync.WaitGroup
	for i, tc := range conns {
		wg.Add(1)
		go func(i int, tc *taskConn) {
			defer wg.Done()
			defer tc.close()
			if err := tc.readOut(ctx, out); err != nil && ctx.Err() == nil {
				c.health.ReportFailure(c.workerID(i), err)
				env.Fail(fmt.Errorf("cluster worker %s: source %s: %w", c.addrs[i], sourceID, err))
			}
		}(i, tc)
	}
	go func() {
		wg.Wait()
		out.Close()
	}()
	return out, nil
}

// ShuffleJoin implements core.Distributor: both inputs hash-partition by
// join key across the workers (the same row hash the in-process exchange
// shards by), each worker symmetric-hash-joins its partition, and the
// output is the union of the per-worker joins.
func (c *Client) ShuffleJoin(ctx context.Context, left, right *engine.CStream, joinVars []string, out *engine.Schema, d *dict.Dict, env core.FragmentEnv) (*engine.CStream, error) {
	h := &taskHeader{Kind: "join", Join: &joinTask{
		JoinVars: joinVars,
		Left:     left.Schema().Vars,
		Right:    right.Schema().Vars,
		Out:      out.Vars,
		Env:      envToWire(env),
	}}
	conns, err := c.openAll(ctx, h, d)
	if err != nil {
		return nil, err
	}
	for _, tc := range conns {
		tc.dec.SetSchema(SideOut, out)
	}

	W := len(conns)
	batch := env.Opts.EffectiveBatchSize()
	// dead[i] is set once worker i's link failed; the partitioners skip
	// it from then on (the failure itself is parked on the execution, so
	// the query surfaces the error after the stream drains).
	dead := make([]atomic.Bool, W)

	fail := func(wi int, err error) {
		if ctx.Err() != nil || dead[wi].Swap(true) {
			return
		}
		c.health.ReportFailure(c.workerID(wi), err)
		env.Fail(fmt.Errorf("cluster worker %s: shuffle: %w", c.addrs[wi], err))
	}

	var sendWG sync.WaitGroup
	sendSide := func(side byte, in *engine.CStream) {
		defer sendWG.Done()
		pos := in.Schema().Positions(joinVars)
		mapping := make([]int, len(in.Schema().Vars))
		for i := range mapping {
			mapping[i] = i
		}
		builders := make([]*engine.ColBuilder, W)
		for i := range builders {
			builders[i] = engine.NewColBuilderCap(in.Schema(), batch)
		}
		flush := func(wi int) {
			if builders[wi].Rows() == 0 || dead[wi].Load() {
				return
			}
			if err := conns[wi].enc.Batch(side, builders[wi].Take()); err != nil {
				fail(wi, err)
			}
		}
		for b := range in.Batches() {
			for r := 0; r < b.Len; r++ {
				wi := int(engine.HashRowKey(b, r, pos) % uint64(W))
				if dead[wi].Load() {
					continue
				}
				builders[wi].AppendRow(b, r, mapping)
				if builders[wi].Rows() >= batch {
					flush(wi)
				}
			}
			// Ship partials at every input-batch boundary: the wire keeps
			// the exchange's flush rules, so first answers stream through
			// the network hop instead of waiting for full batches.
			for wi := range builders {
				flush(wi)
			}
		}
		for wi := range builders {
			flush(wi)
			if dead[wi].Load() {
				continue
			}
			if err := conns[wi].enc.Done(side); err != nil {
				fail(wi, err)
			}
		}
	}
	sendWG.Add(2)
	go sendSide(SideLeft, left)
	go sendSide(SideRight, right)

	outS := engine.NewCStream(out, 2*W)
	var recvWG sync.WaitGroup
	for i, tc := range conns {
		recvWG.Add(1)
		go func(i int, tc *taskConn) {
			defer recvWG.Done()
			if err := tc.readOut(ctx, outS); err != nil && ctx.Err() == nil {
				fail(i, err)
			}
		}(i, tc)
	}
	go func() {
		// Connections close only after the senders stop using their
		// encoders; a dead link's partitioner skips it meanwhile.
		sendWG.Wait()
		recvWG.Wait()
		for _, tc := range conns {
			tc.close()
		}
		outS.Close()
	}()
	return engine.CMeter(ctx, outS, engine.StatsFrom(ctx)), nil
}

// Probe asks every worker for its status over a fresh hello task; links
// that fail report Up == false with the error.
func (c *Client) Probe(ctx context.Context) []WorkerStatus {
	out := make([]WorkerStatus, len(c.addrs))
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := WorkerStatus{
				Addr:         c.addrs[i],
				Breaker:      c.health.State(c.workerID(i)).String(),
				BatchesIn:    c.counters[i].batchesIn.Load(),
				BatchesOut:   c.counters[i].batchesOut.Load(),
				BytesIn:      c.counters[i].bytesIn.Load(),
				BytesOut:     c.counters[i].bytesOut.Load(),
				RemapEntries: c.counters[i].remapN.Load(),
			}
			info, err := c.probeOne(ctx, i)
			if err != nil {
				st.Err = err.Error()
			} else {
				st.Up = true
				st.Info = info
			}
			out[i] = st
		}(i)
	}
	wg.Wait()
	return out
}

func (c *Client) probeOne(ctx context.Context, wi int) (*WorkerInfo, error) {
	d := dict.New() // hello exchanges no batches; a throwaway dict is fine
	tc, err := c.openTask(ctx, wi, &taskHeader{Kind: "hello"}, d)
	if err != nil {
		return nil, err
	}
	defer tc.close()
	f, err := tc.dec.Next()
	if err != nil {
		return nil, err
	}
	if f.Type != frameHello {
		return nil, corrupt("expected hello reply, got frame type 0x%02x", f.Type)
	}
	var info WorkerInfo
	if err := json.Unmarshal(f.Payload, &info); err != nil {
		return nil, err
	}
	return &info, nil
}
