package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ontario/internal/core"
	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/wrapper"
)

// ClientConfig configures a coordinator's worker-pool client.
type ClientConfig struct {
	// DialTimeout bounds each worker dial. 0 means 5s.
	DialTimeout time.Duration
	// Resilience shapes the per-worker-link health registry (timeouts,
	// retries, circuit breakers) guarding task setup; the zero value
	// applies the wrapper package's defaults.
	Resilience wrapper.ResilienceConfig
}

// Client is the coordinator side of the cluster: a core.Distributor that
// fans plan fragments out over the worker pool. It keeps one persistent
// multiplexed link per worker — tasks open streams on the link instead of
// dialing, so the per-link dictionary delta ships each term once ever.
// Stream setup runs behind a per-worker health registry — the same
// breaker/retry layer that guards remote sources — while mid-stream
// failures park on the query's execution and feed the breaker directly.
type Client struct {
	addrs       []string
	dialTimeout time.Duration
	health      *wrapper.HealthRegistry

	mu     sync.Mutex
	links  []*link
	closed bool

	colocated atomic.Bool // caches a successful co-partition check
}

// WorkerStatus is one worker link's health and traffic snapshot.
type WorkerStatus struct {
	Addr    string
	Up      bool
	Breaker string
	Err     string
	Info    *WorkerInfo

	BatchesIn       int64
	BatchesOut      int64
	BytesIn         int64
	BytesOut        int64
	ShuffledBatches int64
	ShuffledBytes   int64
	DictDeltaBytes  int64
	// RemapEntries is the current size of the live link's remap table
	// (zero while disconnected) — per persistent link, not a cumulative
	// per-task sum.
	RemapEntries int64
	Reconnects   int64
	Epoch        int64
}

// NewClient returns a client over the worker addresses.
func NewClient(addrs []string, cfg ClientConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: NewClient needs at least one worker address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &Client{
		addrs:       addrs,
		dialTimeout: cfg.DialTimeout,
		health:      wrapper.NewHealthRegistry(cfg.Resilience),
		links:       make([]*link, len(addrs)),
	}, nil
}

// Workers implements core.Distributor.
func (c *Client) Workers() int { return len(c.addrs) }

// Health exposes the worker-link health registry (breaker states and
// measured stream-setup latency).
func (c *Client) Health() *wrapper.HealthRegistry { return c.health }

// Close tears down every persistent link. In-flight streams fail; later
// fragment calls error out.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	links := make([]*link, len(c.links))
	copy(links, c.links)
	c.mu.Unlock()
	for _, l := range links {
		if l != nil {
			l.close()
		}
	}
}

func (c *Client) workerID(i int) string { return fmt.Sprintf("worker:%d", i) }

// link returns worker i's persistent link, creating it bound to d on
// first use. All fragment traffic of a client must share one dictionary
// (in practice the executor's engine-lifetime dict): link remap state is
// meaningless across dictionaries.
func (c *Client) link(i int, d *dict.Dict) (*link, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("cluster: client closed")
	}
	l := c.links[i]
	if l == nil {
		l = newLink(c.addrs[i], c.dialTimeout, d)
		c.links[i] = l
	} else if l.d != d {
		return nil, errors.New("cluster: client used with a second dictionary")
	}
	return l, nil
}

// openStream opens a task stream on worker wi behind the worker's
// breaker/retry guard. Retrying is safe: no result bytes have been
// consumed yet, and an abandoned stream's frames drop at the demux.
func (c *Client) openStream(ctx context.Context, wi int, h *taskHeader, out *engine.Schema, d *dict.Dict) (*clientStream, error) {
	l, err := c.link(wi, d)
	if err != nil {
		return nil, err
	}
	var st *clientStream
	err = c.health.Do(ctx, c.workerID(wi), func(ctx context.Context) error {
		var err error
		st, err = l.open(h, out)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("cluster worker %s: %w", c.addrs[wi], err)
	}
	return st, nil
}

// openAll opens the task stream on every worker, releasing already-open
// streams when any worker fails.
func (c *Client) openAll(ctx context.Context, h *taskHeader, out *engine.Schema, d *dict.Dict) ([]*clientStream, error) {
	streams := make([]*clientStream, len(c.addrs))
	for i := range c.addrs {
		st, err := c.openStream(ctx, i, h, out, d)
		if err != nil {
			for _, open := range streams {
				if open != nil {
					open.abort(nil)
					open.release()
				}
			}
			return nil, err
		}
		streams[i] = st
	}
	return streams, nil
}

// readOut relays a stream's SideOut batches into out until the worker's
// Done frame. A worker-side error frame comes back as an error; a broken
// link surfaces as the link failure.
func (c *Client) readOut(ctx context.Context, st *clientStream, out *engine.CStream) error {
	stop := context.AfterFunc(ctx, func() { st.abort(ctx.Err()) })
	defer stop()
	defer st.release()
	for {
		f, qerr, ok := st.q.pop()
		if !ok {
			if qerr == nil {
				qerr = corrupt("result stream closed without done")
			}
			return qerr
		}
		switch f.Type {
		case frameBatch:
			if f.Side != SideOut {
				return corrupt("result batch for side %d", f.Side)
			}
			if f.Batch == nil {
				continue
			}
			if !out.SendBatch(ctx, f.Batch) {
				return nil
			}
		case frameDone:
			return nil
		case frameError:
			return errors.New(string(f.Payload))
		default:
			return corrupt("unexpected frame type 0x%02x in result stream", f.Type)
		}
	}
}

// fanOut opens h on every worker and streams the union of their result
// batches (partitions are disjoint, so each answer arrives exactly once).
func (c *Client) fanOut(ctx context.Context, h *taskHeader, schema *engine.Schema, d *dict.Dict, env core.FragmentEnv, what string) (*engine.CStream, error) {
	streams, err := c.openAll(ctx, h, schema, d)
	if err != nil {
		return nil, err
	}
	out := engine.NewCStream(schema, 2*len(streams))
	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *clientStream) {
			defer wg.Done()
			if err := c.readOut(ctx, st, out); err != nil && ctx.Err() == nil {
				c.health.ReportFailure(c.workerID(i), err)
				env.Fail(fmt.Errorf("cluster worker %s: %s: %w", c.addrs[i], what, err))
			}
		}(i, st)
	}
	go func() {
		wg.Wait()
		out.Close()
	}()
	return out, nil
}

// Service implements core.Distributor: the request fans out to every
// worker's partition and the result stream is the union of their batches.
func (c *Client) Service(ctx context.Context, sourceID string, req *wrapper.Request, schema *engine.Schema, d *dict.Dict, env core.FragmentEnv) (*engine.CStream, error) {
	wreq, err := requestToWire(req)
	if err != nil {
		return nil, err
	}
	h := &taskHeader{Kind: "scan", Scan: &scanTask{
		SourceID: sourceID,
		Req:      wreq,
		Schema:   schema.Vars,
		Env:      envToWire(env),
	}}
	return c.fanOut(ctx, h, schema, d, env, "source "+sourceID)
}

// RunFragment implements core.Distributor: the serializable plan subtree
// runs whole on every worker's partition — each worker joins locally and
// streams only results, zero shuffled batches.
func (c *Client) RunFragment(ctx context.Context, root core.PlanNode, out *engine.Schema, d *dict.Dict, env core.FragmentEnv) (*engine.CStream, error) {
	wf, err := fragToWire(root)
	if err != nil {
		return nil, err
	}
	h := &taskHeader{Kind: "frag", Frag: &fragTask{
		Root: wf,
		Out:  out.Vars,
		Env:  envToWire(env),
	}}
	return c.fanOut(ctx, h, out, d, env, "fragment")
}

// Colocated implements core.Distributor: it reports whether the pool is a
// complete co-partitioned cut of the lake — every worker reachable, all
// reporting the subject-hash scheme, Of matching the pool size, and the
// partition indexes covering 0..N-1 exactly once. The first success is
// cached: partition identity is fixed at worker startup, and a restarted
// worker rejoins with the same identity or fails the query loudly either
// way.
func (c *Client) Colocated(ctx context.Context, d *dict.Dict) bool {
	if c.colocated.Load() {
		return true
	}
	W := len(c.addrs)
	seen := make([]bool, W)
	for i := range c.addrs {
		l, err := c.link(i, d)
		if err != nil {
			return false
		}
		info, err := l.handshake()
		if err != nil {
			return false
		}
		if info.Scheme != PartitionScheme || info.Of != W {
			return false
		}
		if info.Partition < 0 || info.Partition >= W || seen[info.Partition] {
			return false
		}
		seen[info.Partition] = true
	}
	c.colocated.Store(true)
	return true
}

// ShuffleJoin implements core.Distributor: both inputs hash-partition by
// join key across the workers (the same row hash the in-process exchange
// shards by), each worker symmetric-hash-joins its partition, and the
// output is the union of the per-worker joins.
func (c *Client) ShuffleJoin(ctx context.Context, left, right *engine.CStream, joinVars []string, out *engine.Schema, d *dict.Dict, env core.FragmentEnv) (*engine.CStream, error) {
	h := &taskHeader{Kind: "join", Join: &joinTask{
		JoinVars: joinVars,
		Left:     left.Schema().Vars,
		Right:    right.Schema().Vars,
		Out:      out.Vars,
		Env:      envToWire(env),
	}}
	streams, err := c.openAll(ctx, h, out, d)
	if err != nil {
		return nil, err
	}

	W := len(streams)
	batch := env.Opts.EffectiveBatchSize()
	// dead[i] is set once worker i's stream failed; the partitioners skip
	// it from then on (the failure itself is parked on the execution, so
	// the query surfaces the error after the stream drains).
	dead := make([]atomic.Bool, W)

	fail := func(wi int, err error) {
		if ctx.Err() != nil || dead[wi].Swap(true) {
			return
		}
		c.health.ReportFailure(c.workerID(wi), err)
		env.Fail(fmt.Errorf("cluster worker %s: shuffle: %w", c.addrs[wi], err))
	}

	var sendWG sync.WaitGroup
	sendSide := func(side byte, in *engine.CStream) {
		defer sendWG.Done()
		pos := in.Schema().Positions(joinVars)
		mapping := make([]int, len(in.Schema().Vars))
		for i := range mapping {
			mapping[i] = i
		}
		builders := make([]*engine.ColBuilder, W)
		for i := range builders {
			builders[i] = engine.NewColBuilderCap(in.Schema(), batch)
		}
		flush := func(wi int) {
			if builders[wi].Rows() == 0 || dead[wi].Load() {
				return
			}
			if err := streams[wi].batch(side, builders[wi].Take()); err != nil {
				fail(wi, err)
			}
		}
		for b := range in.Batches() {
			for r := 0; r < b.Len; r++ {
				wi := int(engine.HashRowKey(b, r, pos) % uint64(W))
				if dead[wi].Load() {
					continue
				}
				builders[wi].AppendRow(b, r, mapping)
				if builders[wi].Rows() >= batch {
					flush(wi)
				}
			}
			// Ship partials at every input-batch boundary: the wire keeps
			// the exchange's flush rules, so first answers stream through
			// the network hop instead of waiting for full batches.
			for wi := range builders {
				flush(wi)
			}
		}
		for wi := range builders {
			flush(wi)
			if dead[wi].Load() {
				continue
			}
			if err := streams[wi].done(side); err != nil {
				fail(wi, err)
			}
		}
	}
	sendWG.Add(2)
	go sendSide(SideLeft, left)
	go sendSide(SideRight, right)

	outS := engine.NewCStream(out, 2*W)
	var recvWG sync.WaitGroup
	for i, st := range streams {
		recvWG.Add(1)
		go func(i int, st *clientStream) {
			defer recvWG.Done()
			if err := c.readOut(ctx, st, outS); err != nil && ctx.Err() == nil {
				fail(i, err)
			}
		}(i, st)
	}
	go func() {
		sendWG.Wait()
		recvWG.Wait()
		outS.Close()
	}()
	return engine.CMeter(ctx, outS, engine.StatsFrom(ctx)), nil
}

// Probe asks every worker for its status over a hello stream on the
// persistent link (or a throwaway dial when no query ever touched the
// worker); links that fail report Up == false with the error.
func (c *Client) Probe(ctx context.Context) []WorkerStatus {
	out := make([]WorkerStatus, len(c.addrs))
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := WorkerStatus{
				Addr:    c.addrs[i],
				Breaker: c.health.State(c.workerID(i)).String(),
			}
			c.mu.Lock()
			l := c.links[i]
			c.mu.Unlock()
			if l != nil {
				lc := l.counters()
				st.BatchesIn = lc.batchesIn
				st.BatchesOut = lc.batchesOut
				st.BytesIn = lc.bytesIn
				st.BytesOut = lc.bytesOut
				st.ShuffledBatches = lc.shufBatches
				st.ShuffledBytes = lc.shufBytes
				st.DictDeltaBytes = lc.deltaBytes
				st.RemapEntries = lc.remapEntries
				st.Reconnects = lc.reconnects
				st.Epoch = lc.epoch
			}
			info, err := c.probeOne(ctx, i, l)
			if err != nil {
				st.Err = err.Error()
			} else {
				st.Up = true
				st.Info = info
				if st.Epoch == 0 {
					st.Epoch = info.Epoch
				}
			}
			out[i] = st
		}(i)
	}
	wg.Wait()
	return out
}

// probeOne fetches a live WorkerInfo: over the persistent link when one
// exists, else by a one-shot dial that just reads the worker's handshake
// hello (no query state is created for a worker the client never used).
func (c *Client) probeOne(ctx context.Context, wi int, l *link) (*WorkerInfo, error) {
	var info *WorkerInfo
	err := c.health.Do(ctx, c.workerID(wi), func(ctx context.Context) error {
		if l == nil {
			i, err := probeDial(c.addrs[wi], c.dialTimeout)
			if err != nil {
				return err
			}
			info = i
			return nil
		}
		st, err := l.open(&taskHeader{Kind: "hello"}, nil)
		if err != nil {
			return err
		}
		defer st.release()
		stop := context.AfterFunc(ctx, func() { st.abort(ctx.Err()) })
		defer stop()
		for {
			f, qerr, ok := st.q.pop()
			if !ok {
				if qerr == nil {
					qerr = corrupt("probe stream closed without hello")
				}
				return qerr
			}
			switch f.Type {
			case frameHello:
				var i WorkerInfo
				if err := json.Unmarshal(f.Payload, &i); err != nil {
					return err
				}
				info = &i
				return nil
			case frameError:
				return errors.New(string(f.Payload))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

// probeDial reads a worker's handshake hello over a throwaway connection.
func probeDial(addr string, timeout time.Duration) (*WorkerInfo, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(timeout))
	dec := NewDecoder(conn, dict.New())
	f, err := dec.Next()
	if err != nil {
		return nil, err
	}
	if f.Type != frameHello {
		return nil, corrupt("expected hello handshake, got frame type 0x%02x", f.Type)
	}
	var info WorkerInfo
	if err := json.Unmarshal(f.Payload, &info); err != nil {
		return nil, err
	}
	return &info, nil
}
