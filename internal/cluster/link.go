package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ontario/internal/dict"
	"ontario/internal/engine"
)

// link is the coordinator's persistent multiplexed connection to one
// worker. It dials lazily, handshakes (the worker volunteers a hello on
// stream 0 carrying its session epoch), and then demultiplexes frames to
// the client streams sharing the connection. Dictionary-delta remap state
// lives exactly as long as the TCP connection: a re-dial starts a fresh
// codec pair, so a restarted worker (new epoch, empty remap table) can
// never be fed stale IDs.
type link struct {
	addr        string
	dialTimeout time.Duration
	d           *dict.Dict

	mu         sync.Mutex
	conn       net.Conn
	enc        *Encoder
	dec        *Decoder
	gen        uint64 // bumps on every successful dial
	epoch      int64  // worker session epoch from the handshake
	info       WorkerInfo
	nextStream uint64
	streams    map[uint64]*clientStream
	closed     bool

	reconnects atomic.Int64

	// Counters folded in from connections that have since died; totals
	// are fold + the live codec pair.
	fBatchesIn, fBatchesOut  atomic.Int64
	fBytesIn, fBytesOut      atomic.Int64
	fShufBatches, fShufBytes atomic.Int64
	fDeltaBytes              atomic.Int64
}

func newLink(addr string, dialTimeout time.Duration, d *dict.Dict) *link {
	return &link{
		addr:        addr,
		dialTimeout: dialTimeout,
		d:           d,
		streams:     make(map[uint64]*clientStream),
	}
}

// clientStream is one task multiplexed on a link. Writes go through the
// link encoder of the stream's connection generation; frames the demux
// loop routes here queue unboundedly until popped or the stream closes.
type clientStream struct {
	l   *link
	gen uint64
	id  uint64
	enc *Encoder
	q   *frameQ
	out *engine.Schema
}

// connectLocked dials and handshakes; callers hold l.mu.
func (l *link) connectLocked() error {
	if l.closed {
		return fmt.Errorf("cluster: client closed")
	}
	if l.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", l.addr, l.dialTimeout)
	if err != nil {
		return err
	}
	enc := NewEncoder(conn, l.d)
	dec := NewDecoder(conn, l.d)
	dec.SetLookup(l.lookupSchema)

	// The worker speaks first: a hello on stream 0 carrying its session
	// epoch and partition identity, so the handshake costs zero client
	// round-trips beyond the dial.
	conn.SetReadDeadline(time.Now().Add(l.dialTimeout))
	f, err := dec.Next()
	if err != nil {
		conn.Close()
		return fmt.Errorf("link handshake: %w", err)
	}
	if f.Type != frameHello || f.Stream != 0 {
		conn.Close()
		return corrupt("link handshake: expected hello on stream 0, got frame type 0x%02x on stream %d", f.Type, f.Stream)
	}
	var info WorkerInfo
	if err := json.Unmarshal(f.Payload, &info); err != nil {
		conn.Close()
		return fmt.Errorf("link handshake: %w", err)
	}
	conn.SetReadDeadline(time.Time{})

	if l.gen > 0 {
		l.reconnects.Add(1)
	}
	l.gen++
	l.conn, l.enc, l.dec = conn, enc, dec
	l.epoch = info.Epoch
	l.info = info
	go l.demux(dec, l.gen)
	return nil
}

// lookupSchema resolves batch layouts for the live decoder; client
// streams only ever receive result (SideOut) batches.
func (l *link) lookupSchema(stream uint64, side byte) *engine.Schema {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st := l.streams[stream]; st != nil && side == SideOut {
		return st.out
	}
	return nil
}

// demux routes one connection generation's frames to its streams until
// the connection dies. Frames for unknown streams (late batches after a
// task released) are dropped — their dictionary deltas already interned
// inside the decoder, which is the part that is link state.
func (l *link) demux(dec *Decoder, gen uint64) {
	for {
		f, err := dec.Next()
		if err != nil {
			l.fail(gen, err)
			return
		}
		l.mu.Lock()
		st := l.streams[f.Stream]
		l.mu.Unlock()
		if st != nil {
			st.q.push(f)
		}
	}
}

// fail tears down connection generation gen (idempotent; a newer
// generation is left alone): counters fold into the link totals, every
// stream of the generation closes with the error, and the next open
// re-dials.
func (l *link) fail(gen uint64, err error) {
	l.mu.Lock()
	if l.gen != gen || l.conn == nil {
		l.mu.Unlock()
		return
	}
	conn, enc, dec := l.conn, l.enc, l.dec
	l.conn, l.enc, l.dec = nil, nil, nil
	streams := l.streams
	l.streams = make(map[uint64]*clientStream)
	l.mu.Unlock()

	conn.Close()
	l.fBatchesIn.Add(dec.Batches())
	l.fBatchesOut.Add(enc.Batches())
	l.fBytesIn.Add(dec.Bytes())
	l.fBytesOut.Add(enc.Bytes())
	l.fShufBatches.Add(enc.ShuffledBatches())
	l.fShufBytes.Add(enc.ShuffledBytes())
	l.fDeltaBytes.Add(enc.DeltaBytes() + dec.DeltaBytes())
	for _, st := range streams {
		st.q.close(fmt.Errorf("cluster: link to %s broken: %w", l.addr, err))
	}
}

// close shuts the link down for good; open fails from here on.
func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	gen := l.gen
	l.mu.Unlock()
	l.fail(gen, fmt.Errorf("client closed"))
}

// open connects (if needed) and allocates a fresh stream, writing h as
// its opening task frame. out is the schema of the result batches the
// stream expects (nil for payload-only streams such as probes).
func (l *link) open(h *taskHeader, out *engine.Schema) (*clientStream, error) {
	l.mu.Lock()
	if err := l.connectLocked(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	l.nextStream++
	st := &clientStream{
		l:   l,
		gen: l.gen,
		id:  l.nextStream,
		enc: l.enc,
		q:   newFrameQ(),
		out: out,
	}
	l.streams[st.id] = st
	l.mu.Unlock()
	if err := st.enc.Task(st.id, h); err != nil {
		st.fail(err)
		return nil, err
	}
	return st, nil
}

// handshake returns the worker's hello info, dialing if the link is not
// yet connected. The info is the handshake snapshot — probe for a live
// one.
func (l *link) handshake() (WorkerInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.connectLocked(); err != nil {
		return WorkerInfo{}, err
	}
	return l.info, nil
}

// fail reports a stream-level transport error, tearing down the stream's
// connection generation.
func (st *clientStream) fail(err error) { st.l.fail(st.gen, err) }

// release unregisters the stream; later frames for it drop silently.
func (st *clientStream) release() {
	st.l.mu.Lock()
	delete(st.l.streams, st.id)
	st.l.mu.Unlock()
	st.q.close(nil)
}

// abort cancels the stream remotely (best effort) and unblocks any
// pending pop with err.
func (st *clientStream) abort(err error) {
	st.enc.Cancel(st.id)
	st.q.close(err)
}

func (st *clientStream) batch(side byte, b *engine.ColBatch) error {
	if err := st.enc.Batch(st.id, side, b); err != nil {
		st.fail(err)
		return err
	}
	return nil
}

func (st *clientStream) done(side byte) error {
	if err := st.enc.Done(st.id, side); err != nil {
		st.fail(err)
		return err
	}
	return nil
}

// linkCounters is a consistent snapshot of one link's cumulative wire
// counters (folded dead connections plus the live codec pair).
type linkCounters struct {
	batchesIn, batchesOut  int64
	bytesIn, bytesOut      int64
	shufBatches, shufBytes int64
	deltaBytes             int64
	remapEntries           int64 // live connection only: current table size
	epoch                  int64
	reconnects             int64
	connected              bool
}

func (l *link) counters() linkCounters {
	l.mu.Lock()
	enc, dec, epoch := l.enc, l.dec, l.epoch
	l.mu.Unlock()
	c := linkCounters{
		batchesIn:   l.fBatchesIn.Load(),
		batchesOut:  l.fBatchesOut.Load(),
		bytesIn:     l.fBytesIn.Load(),
		bytesOut:    l.fBytesOut.Load(),
		shufBatches: l.fShufBatches.Load(),
		shufBytes:   l.fShufBytes.Load(),
		deltaBytes:  l.fDeltaBytes.Load(),
		epoch:       epoch,
		reconnects:  l.reconnects.Load(),
	}
	if enc != nil && dec != nil {
		c.connected = true
		c.batchesIn += dec.Batches()
		c.batchesOut += enc.Batches()
		c.bytesIn += dec.Bytes()
		c.bytesOut += enc.Bytes()
		c.shufBatches += enc.ShuffledBatches()
		c.shufBytes += enc.ShuffledBytes()
		c.deltaBytes += enc.DeltaBytes() + dec.DeltaBytes()
		c.remapEntries = dec.RemapEntries()
	}
	return c
}
