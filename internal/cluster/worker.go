package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ontario/internal/bridge"
	"ontario/internal/core"
	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// WorkerConfig configures a cluster worker.
type WorkerConfig struct {
	// Partition/Of identify the worker's hash-partition of the lake
	// (informational: the caller partitions the lake before NewWorker).
	Partition, Of int
	// MaxConcurrent bounds the fragments executing at once; excess tasks
	// queue. 0 means 16.
	MaxConcurrent int
	// Logger receives per-task failures; nil discards them.
	Logger *log.Logger
}

// epochSeq de-collides session epochs minted in the same nanosecond
// (in-process test pools start several workers at once).
var epochSeq atomic.Int64

// Worker executes plan fragments against one partition of the lake: scan
// tasks run a wrapper request through the partitioned catalog, join tasks
// symmetric-hash-join the batches the coordinator shuffles in, and frag
// tasks run a whole co-partitioned plan subtree locally. One TCP
// connection carries many concurrent task streams; the worker greets
// every accepted connection with a hello on stream 0 carrying its
// session epoch, so a coordinator can tell reconnects from restarts.
type Worker struct {
	exec   *core.Executor
	d      *dict.Dict
	part   int
	of     int
	epoch  int64
	scheme string
	sem    chan struct{}
	logger *log.Logger

	ctx    context.Context
	cancel context.CancelFunc

	lis    net.Listener
	wg     sync.WaitGroup // connection handlers
	taskWG sync.WaitGroup // in-flight task streams

	mu    sync.Mutex
	conns map[*workerConn]struct{}

	active atomic.Int64
	queued atomic.Int64

	// Counters folded in from connections that have since closed; Info
	// adds the live connections' codecs on top.
	fBatchesIn, fBatchesOut  atomic.Int64
	fBytesIn, fBytesOut      atomic.Int64
	fShufBatches, fShufBytes atomic.Int64
	fDeltaBytes              atomic.Int64
}

// NewWorker returns a worker executing against the (already partitioned)
// public lake.
func NewWorker(publicLake any, cfg WorkerConfig) (*Worker, error) {
	cat := bridge.LakeCatalog(publicLake)
	if cat == nil {
		return nil, fmt.Errorf("cluster: NewWorker requires a lake built with lake.NewBuilder")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	// The advertised scheme requires every source to record the same
	// partition identity this worker claims; a mixed or unpartitioned
	// catalog advertises none, which vetoes co-partitioned pushdown.
	scheme := ""
	if ids := cat.SourceIDs(); len(ids) > 0 {
		scheme = PartitionScheme
		for _, id := range ids {
			p := cat.Source(id).Partition
			if p == nil || p.Scheme != PartitionScheme || p.Part != cfg.Partition || p.Of != cfg.Of {
				scheme = ""
				break
			}
		}
	}
	exec := core.NewExecutor(cat)
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		exec:   exec,
		d:      exec.Dict(),
		part:   cfg.Partition,
		of:     cfg.Of,
		epoch:  time.Now().UnixNano() + epochSeq.Add(1),
		scheme: scheme,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		logger: cfg.Logger,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[*workerConn]struct{}),
	}, nil
}

// Epoch returns the worker's session epoch.
func (w *Worker) Epoch() int64 { return w.epoch }

// Serve accepts coordinator links on lis until Shutdown closes it.
func (w *Worker) Serve(lis net.Listener) error {
	w.mu.Lock()
	w.lis = lis
	w.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if w.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handle(conn)
		}()
	}
}

// Shutdown drains the worker: it stops accepting links, cancels in-flight
// fragments, waits for them to unwind until ctx expires, then force-
// closes the persistent connections (which never close on their own).
func (w *Worker) Shutdown(ctx context.Context) error {
	w.cancel()
	w.mu.Lock()
	if w.lis != nil {
		w.lis.Close()
	}
	w.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		w.taskWG.Wait()
		close(drained)
	}()
	var expired error
	select {
	case <-drained:
	case <-ctx.Done():
		expired = ctx.Err()
	}
	w.mu.Lock()
	for wc := range w.conns {
		wc.conn.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return expired
}

// Info snapshots the worker's identity and shuffle counters: folded
// totals of closed connections plus the live links' codecs. RemapEntries
// is the live links' current remap-table sizes.
func (w *Worker) Info() WorkerInfo {
	info := WorkerInfo{
		Epoch:           w.epoch,
		Partition:       w.part,
		Of:              w.of,
		Scheme:          w.scheme,
		Active:          w.active.Load(),
		Queued:          w.queued.Load(),
		BatchesIn:       w.fBatchesIn.Load(),
		BatchesOut:      w.fBatchesOut.Load(),
		BytesIn:         w.fBytesIn.Load(),
		BytesOut:        w.fBytesOut.Load(),
		ShuffledBatches: w.fShufBatches.Load(),
		ShuffledBytes:   w.fShufBytes.Load(),
		DictDeltaBytes:  w.fDeltaBytes.Load(),
		Terms:           w.d.Len(),
	}
	w.mu.Lock()
	for wc := range w.conns {
		info.BatchesIn += wc.dec.Batches()
		info.BatchesOut += wc.enc.Batches()
		info.BytesIn += wc.dec.Bytes()
		info.BytesOut += wc.enc.Bytes()
		info.ShuffledBatches += wc.dec.ShuffledBatches()
		info.ShuffledBytes += wc.dec.ShuffledBytes()
		info.DictDeltaBytes += wc.dec.DeltaBytes() + wc.enc.DeltaBytes()
		info.RemapEntries += wc.dec.RemapEntries()
	}
	w.mu.Unlock()
	return info
}

func (w *Worker) logf(format string, args ...any) {
	if w.logger != nil {
		w.logger.Printf(format, args...)
	}
}

// workerConn is one coordinator link: a shared codec pair plus the task
// streams currently multiplexed on it.
type workerConn struct {
	conn net.Conn
	enc  *Encoder
	dec  *Decoder

	mu      sync.Mutex
	streams map[uint64]*workerStream
}

// workerStream is one task in flight on a link. Its context is created
// the moment the task frame parses — before admission — so a cancel
// frame aborts even a task still waiting in the queue. Join-input
// schemas register here synchronously in the demux loop, so a batch
// frame can never outrun its stream's layout.
type workerStream struct {
	id      uint64
	ctx     context.Context
	cancel  context.CancelFunc
	q       *frameQ
	schemas [3]*engine.Schema
}

func (wc *workerConn) lookupSchema(stream uint64, side byte) *engine.Schema {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if st := wc.streams[stream]; st != nil {
		return st.schemas[side]
	}
	return nil
}

func (wc *workerConn) stream(id uint64) *workerStream {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.streams[id]
}

func workerInfoPtr(i WorkerInfo) *WorkerInfo { return &i }

// handle demultiplexes one coordinator link: the hello handshake, then a
// read loop routing frames to task streams, spawning a goroutine per
// task frame. It returns when the connection dies, after every task of
// the link unwinds.
func (w *Worker) handle(conn net.Conn) {
	wc := &workerConn{
		conn:    conn,
		enc:     NewEncoder(conn, w.d),
		dec:     NewDecoder(conn, w.d),
		streams: make(map[uint64]*workerStream),
	}
	wc.dec.SetLookup(wc.lookupSchema)
	w.mu.Lock()
	w.conns[wc] = struct{}{}
	w.mu.Unlock()

	var tasks sync.WaitGroup
	defer func() {
		conn.Close()
		wc.mu.Lock()
		for _, st := range wc.streams {
			st.cancel()
			st.q.close(errors.New("cluster: link closed"))
		}
		wc.mu.Unlock()
		tasks.Wait()
		w.mu.Lock()
		delete(w.conns, wc)
		w.mu.Unlock()
		w.fBatchesIn.Add(wc.dec.Batches())
		w.fBatchesOut.Add(wc.enc.Batches())
		w.fBytesIn.Add(wc.dec.Bytes())
		w.fBytesOut.Add(wc.enc.Bytes())
		w.fShufBatches.Add(wc.dec.ShuffledBatches())
		w.fShufBytes.Add(wc.dec.ShuffledBytes())
		w.fDeltaBytes.Add(wc.dec.DeltaBytes() + wc.enc.DeltaBytes())
	}()

	// The worker speaks first: a stream-0 hello carrying the session
	// epoch and partition identity, so links handshake in half a round
	// trip and restarts are detectable.
	if err := wc.enc.Hello(0, workerInfoPtr(w.Info())); err != nil {
		return
	}

	for {
		f, err := wc.dec.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case frameTask:
			var h taskHeader
			if err := json.Unmarshal(f.Payload, &h); err != nil {
				wc.enc.Error(f.Stream, "bad task header: "+err.Error())
				continue
			}
			if h.Kind == "hello" {
				// Status probes skip admission: they must answer even when
				// the fragment queue is saturated.
				if err := wc.enc.Hello(f.Stream, workerInfoPtr(w.Info())); err != nil {
					w.logf("cluster worker: hello reply: %v", err)
				}
				continue
			}
			st := &workerStream{id: f.Stream, q: newFrameQ()}
			st.ctx, st.cancel = context.WithCancel(w.ctx)
			if h.Join != nil {
				st.schemas[SideLeft] = engine.NewSchema(h.Join.Left)
				st.schemas[SideRight] = engine.NewSchema(h.Join.Right)
			}
			wc.mu.Lock()
			wc.streams[st.id] = st
			wc.mu.Unlock()
			tasks.Add(1)
			w.taskWG.Add(1)
			go func(h taskHeader, st *workerStream) {
				defer tasks.Done()
				defer w.taskWG.Done()
				w.runTask(wc, st, &h)
				wc.mu.Lock()
				delete(wc.streams, st.id)
				wc.mu.Unlock()
				st.cancel()
				st.q.close(nil)
			}(h, st)
		case frameBatch, frameDone:
			if st := wc.stream(f.Stream); st != nil {
				st.q.push(f)
			}
		case frameCancel, frameError:
			// The coordinator abandoned the task: abort it even while it
			// still queues for admission.
			if st := wc.stream(f.Stream); st != nil {
				st.cancel()
				st.q.close(context.Canceled)
			}
		default:
			// Unknown or late frames for released streams drop; their
			// dictionary deltas already interned inside the decoder.
		}
	}
}

// runTask admits and executes one task stream, reporting failures as an
// error frame on the stream.
func (w *Worker) runTask(wc *workerConn, st *workerStream, h *taskHeader) {
	// Admission: a worker executes at most MaxConcurrent fragments; the
	// rest wait here (the queue-depth gauge readers see via Info).
	w.queued.Add(1)
	select {
	case w.sem <- struct{}{}:
		w.queued.Add(-1)
	case <-st.ctx.Done():
		w.queued.Add(-1)
		if w.ctx.Err() != nil {
			wc.enc.Error(st.id, "worker shutting down")
		}
		return
	}
	defer func() { <-w.sem }()
	w.active.Add(1)
	defer w.active.Add(-1)

	var runErr error
	switch {
	case h.Kind == "scan" && h.Scan != nil:
		runErr = w.runScan(st, wc.enc, h.Scan)
	case h.Kind == "join" && h.Join != nil:
		runErr = w.runJoin(st, wc.enc, h.Join)
	case h.Kind == "frag" && h.Frag != nil:
		runErr = w.runFrag(st, wc.enc, h.Frag)
	default:
		runErr = fmt.Errorf("unknown task kind %q", h.Kind)
	}
	if runErr != nil && st.ctx.Err() == nil {
		w.logf("cluster worker: task %s: %v", h.Kind, runErr)
		wc.enc.Error(st.id, runErr.Error())
	}
}

// sendOut streams s's batches to the coordinator as the stream's SideOut.
func (w *Worker) sendOut(st *workerStream, enc *Encoder, s *engine.CStream) error {
	for b := range s.Batches() {
		if err := enc.Batch(st.id, SideOut, b); err != nil {
			st.cancel()
			for range s.Batches() {
			}
			return err
		}
	}
	return nil
}

// runScan executes one wrapper request against this worker's partition
// and streams the result batches back.
func (w *Worker) runScan(st *workerStream, enc *Encoder, sc *scanTask) error {
	req, err := sc.Req.request()
	if err != nil {
		return err
	}
	opts := sc.Env.options()
	x := w.exec.NewExecution(sc.Env.Scale, sc.Env.Seed)
	schema := engine.NewSchema(sc.Schema)
	s, err := x.RunService(st.ctx, sc.SourceID, req, schema, opts)
	if err != nil {
		return err
	}
	if err := w.sendOut(st, enc, s); err != nil {
		return err
	}
	if err := x.Err(); err != nil {
		return err
	}
	return enc.Done(st.id, SideOut)
}

// runFrag executes a co-partitioned plan subtree locally and streams only
// its results back — the shuffle-elision path.
func (w *Worker) runFrag(st *workerStream, enc *Encoder, ft *fragTask) error {
	if ft.Root == nil {
		return corrupt("fragment without a root")
	}
	opts := ft.Env.options()
	x := w.exec.NewExecution(ft.Env.Scale, ft.Env.Seed)
	s, err := w.buildFrag(st.ctx, x, ft.Root, opts)
	if err != nil {
		return err
	}
	if err := w.sendOut(st, enc, s); err != nil {
		return err
	}
	if err := x.Err(); err != nil {
		return err
	}
	return enc.Done(st.id, SideOut)
}

// buildFrag instantiates the serializable fragment tree as local columnar
// operators over this worker's partition.
func (w *Worker) buildFrag(ctx context.Context, x *core.Execution, f *wireFrag, opts core.Options) (*engine.CStream, error) {
	schema := engine.NewSchema(f.Vars)
	switch f.Kind {
	case "scan":
		if f.Req == nil {
			return nil, corrupt("fragment scan without request")
		}
		req, err := f.Req.request()
		if err != nil {
			return nil, err
		}
		return x.RunService(ctx, f.SourceID, req, schema, opts)
	case "join":
		if f.L == nil || f.R == nil {
			return nil, corrupt("fragment join missing a side")
		}
		l, err := w.buildFrag(ctx, x, f.L, opts)
		if err != nil {
			return nil, err
		}
		r, err := w.buildFrag(ctx, x, f.R, opts)
		if err != nil {
			return nil, err
		}
		return engine.CSymmetricHashJoin(ctx, l, r, f.JoinVars, schema,
			opts.EffectiveProbeParallelism(), opts.EffectiveBatchSize()), nil
	case "filter":
		if len(f.Children) != 1 {
			return nil, corrupt("fragment filter needs exactly one child")
		}
		in, err := w.buildFrag(ctx, x, f.Children[0], opts)
		if err != nil {
			return nil, err
		}
		var filters []sparql.Expr
		for _, we := range f.Filters {
			e, err := we.expr()
			if err != nil {
				return nil, err
			}
			filters = append(filters, e)
		}
		return engine.CFilter(ctx, in, filters, w.d, opts.EffectiveBatchSize()), nil
	case "union":
		if len(f.Children) == 0 {
			return nil, corrupt("fragment union without children")
		}
		ins := make([]*engine.CStream, len(f.Children))
		for i, ch := range f.Children {
			s, err := w.buildFrag(ctx, x, ch, opts)
			if err != nil {
				return nil, err
			}
			ins[i] = s
		}
		return engine.CUnion(ctx, schema, opts.EffectiveBatchSize(), ins...), nil
	default:
		return nil, corrupt("unknown fragment kind %q", f.Kind)
	}
}

// runJoin symmetric-hash-joins the left/right batches the coordinator
// shuffles in, streaming joined batches out as both sides build.
func (w *Worker) runJoin(st *workerStream, enc *Encoder, jt *joinTask) error {
	leftSchema := st.schemas[SideLeft]
	rightSchema := st.schemas[SideRight]
	outSchema := engine.NewSchema(jt.Out)

	opts := jt.Env.options()
	left := engine.NewCStream(leftSchema, 4)
	right := engine.NewCStream(rightSchema, 4)
	out := engine.CSymmetricHashJoin(st.ctx, left, right, jt.JoinVars, outSchema,
		opts.EffectiveProbeParallelism(), opts.EffectiveBatchSize())

	writeErr := make(chan error, 1)
	go func() {
		for b := range out.Batches() {
			if err := enc.Batch(st.id, SideOut, b); err != nil {
				st.cancel()
				for range out.Batches() {
				}
				writeErr <- err
				return
			}
		}
		writeErr <- enc.Done(st.id, SideOut)
	}()

	doneL, doneR := false, false
	closeBoth := func() {
		if !doneL {
			doneL = true
			left.Close()
		}
		if !doneR {
			doneR = true
			right.Close()
		}
	}
	for !(doneL && doneR) {
		f, qerr, ok := st.q.pop()
		if !ok {
			// The stream's queue closed under the task: the link died, the
			// coordinator canceled, or the worker is shutting down.
			st.cancel()
			closeBoth()
			<-writeErr
			if st.ctx.Err() != nil {
				return nil
			}
			if qerr == nil {
				qerr = corrupt("join input ended early")
			}
			return qerr
		}
		switch f.Type {
		case frameBatch:
			var target *engine.CStream
			switch {
			case f.Side == SideLeft && !doneL:
				target = left
			case f.Side == SideRight && !doneR:
				target = right
			default:
				st.cancel()
				closeBoth()
				<-writeErr
				return corrupt("join batch for side %d", f.Side)
			}
			if f.Batch == nil {
				st.cancel()
				closeBoth()
				<-writeErr
				return corrupt("join batch without a registered schema")
			}
			if !target.SendBatch(st.ctx, f.Batch) {
				closeBoth()
				<-writeErr
				return st.ctx.Err()
			}
		case frameDone:
			switch {
			case f.Side == SideLeft && !doneL:
				doneL = true
				left.Close()
			case f.Side == SideRight && !doneR:
				doneR = true
				right.Close()
			}
		default:
			st.cancel()
			closeBoth()
			<-writeErr
			return corrupt("unexpected frame type 0x%02x in join task", f.Type)
		}
	}
	return <-writeErr
}
