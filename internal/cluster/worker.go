package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"ontario/internal/bridge"
	"ontario/internal/core"
	"ontario/internal/dict"
	"ontario/internal/engine"
)

// WorkerConfig configures a cluster worker.
type WorkerConfig struct {
	// Partition/Of identify the worker's hash-partition of the lake
	// (informational: the caller partitions the lake before NewWorker).
	Partition, Of int
	// MaxConcurrent bounds the fragments executing at once; excess tasks
	// queue. 0 means 16.
	MaxConcurrent int
	// Logger receives per-task failures; nil discards them.
	Logger *log.Logger
}

// Worker executes plan fragments against one partition of the lake: scan
// tasks run a wrapper request through the partitioned catalog, join tasks
// symmetric-hash-join the batches the coordinator shuffles in. One TCP
// connection carries exactly one task.
type Worker struct {
	exec   *core.Executor
	d      *dict.Dict
	part   int
	of     int
	sem    chan struct{}
	logger *log.Logger

	ctx    context.Context
	cancel context.CancelFunc

	lis net.Listener
	wg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	active     atomic.Int64
	queued     atomic.Int64
	batchesIn  atomic.Int64
	batchesOut atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	remapN     atomic.Int64
}

// NewWorker returns a worker executing against the (already partitioned)
// public lake.
func NewWorker(publicLake any, cfg WorkerConfig) (*Worker, error) {
	cat := bridge.LakeCatalog(publicLake)
	if cat == nil {
		return nil, fmt.Errorf("cluster: NewWorker requires a lake built with lake.NewBuilder")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	exec := core.NewExecutor(cat)
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		exec:   exec,
		d:      exec.Dict(),
		part:   cfg.Partition,
		of:     cfg.Of,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		logger: cfg.Logger,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts task connections on lis until Shutdown closes it.
func (w *Worker) Serve(lis net.Listener) error {
	w.mu.Lock()
	w.lis = lis
	w.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if w.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		w.mu.Lock()
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handle(conn)
		}()
	}
}

// Shutdown drains the worker: it stops accepting tasks, waits for
// in-flight fragments to finish until ctx expires, then cancels them and
// force-closes their connections.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.cancel()
	w.mu.Lock()
	if w.lis != nil {
		w.lis.Close()
	}
	w.mu.Unlock()
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	<-done
	return ctx.Err()
}

// Info snapshots the worker's identity and shuffle counters.
func (w *Worker) Info() WorkerInfo {
	return WorkerInfo{
		Partition:    w.part,
		Of:           w.of,
		Active:       w.active.Load(),
		Queued:       w.queued.Load(),
		BatchesIn:    w.batchesIn.Load(),
		BatchesOut:   w.batchesOut.Load(),
		BytesIn:      w.bytesIn.Load(),
		BytesOut:     w.bytesOut.Load(),
		RemapEntries: w.remapN.Load(),
		Terms:        w.d.Len(),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.logger != nil {
		w.logger.Printf(format, args...)
	}
}

func (w *Worker) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	dec := NewDecoder(conn, w.d)
	enc := NewEncoder(conn, w.d)
	defer func() {
		w.batchesIn.Add(dec.Batches())
		w.batchesOut.Add(enc.Batches())
		w.bytesIn.Add(dec.Bytes())
		w.bytesOut.Add(enc.Bytes())
		w.remapN.Add(dec.RemapEntries())
	}()

	f, err := dec.Next()
	if err != nil || f.Type != frameTask {
		return
	}
	var h taskHeader
	if err := json.Unmarshal(f.Payload, &h); err != nil {
		enc.Error("bad task header: " + err.Error())
		return
	}
	if h.Kind == "hello" {
		if err := enc.Hello(workerInfoPtr(w.Info())); err != nil {
			w.logf("cluster worker: hello reply: %v", err)
		}
		return
	}

	// Admission: a worker executes at most MaxConcurrent fragments; the
	// rest wait here (the queue-depth gauge readers see via Info).
	w.queued.Add(1)
	select {
	case w.sem <- struct{}{}:
		w.queued.Add(-1)
	case <-w.ctx.Done():
		w.queued.Add(-1)
		enc.Error("worker shutting down")
		return
	}
	defer func() { <-w.sem }()
	w.active.Add(1)
	defer w.active.Add(-1)

	ctx, cancel := context.WithCancel(w.ctx)
	defer cancel()

	var runErr error
	switch {
	case h.Kind == "scan" && h.Scan != nil:
		runErr = w.runScan(ctx, cancel, enc, dec, h.Scan)
	case h.Kind == "join" && h.Join != nil:
		runErr = w.runJoin(ctx, cancel, enc, dec, h.Join)
	default:
		runErr = fmt.Errorf("unknown task kind %q", h.Kind)
	}
	if runErr != nil && ctx.Err() == nil {
		w.logf("cluster worker: task %s: %v", h.Kind, runErr)
		enc.Error(runErr.Error())
	}
}

func workerInfoPtr(i WorkerInfo) *WorkerInfo { return &i }

// runScan executes one wrapper request against this worker's partition
// and streams the result batches back.
func (w *Worker) runScan(ctx context.Context, cancel context.CancelFunc, enc *Encoder, dec *Decoder, st *scanTask) error {
	req, err := st.Req.request()
	if err != nil {
		return err
	}
	opts := st.Env.options()
	x := w.exec.NewExecution(st.Env.Scale, st.Env.Seed)
	schema := engine.NewSchema(st.Schema)

	// The coordinator sends nothing after the task header; a read here
	// only ever returns when the peer aborts or disconnects — either way,
	// stop producing.
	go func() {
		if _, err := dec.Next(); err != nil {
			cancel()
		}
	}()

	s, err := x.RunService(ctx, st.SourceID, req, schema, opts)
	if err != nil {
		return err
	}
	for b := range s.Batches() {
		if err := enc.Batch(SideOut, b); err != nil {
			cancel()
			for range s.Batches() {
			}
			return err
		}
	}
	if err := x.Err(); err != nil {
		return err
	}
	return enc.Done(SideOut)
}

// runJoin symmetric-hash-joins the left/right batches the coordinator
// shuffles in, streaming joined batches out as both sides build.
func (w *Worker) runJoin(ctx context.Context, cancel context.CancelFunc, enc *Encoder, dec *Decoder, jt *joinTask) error {
	leftSchema := engine.NewSchema(jt.Left)
	rightSchema := engine.NewSchema(jt.Right)
	outSchema := engine.NewSchema(jt.Out)
	dec.SetSchema(SideLeft, leftSchema)
	dec.SetSchema(SideRight, rightSchema)

	opts := jt.Env.options()
	left := engine.NewCStream(leftSchema, 4)
	right := engine.NewCStream(rightSchema, 4)
	out := engine.CSymmetricHashJoin(ctx, left, right, jt.JoinVars, outSchema,
		opts.EffectiveProbeParallelism(), opts.EffectiveBatchSize())

	writeErr := make(chan error, 1)
	go func() {
		for b := range out.Batches() {
			if err := enc.Batch(SideOut, b); err != nil {
				cancel()
				for range out.Batches() {
				}
				writeErr <- err
				return
			}
		}
		writeErr <- enc.Done(SideOut)
	}()

	doneL, doneR := false, false
	closeBoth := func() {
		if !doneL {
			doneL = true
			left.Close()
		}
		if !doneR {
			doneR = true
			right.Close()
		}
	}
	for !(doneL && doneR) {
		f, err := dec.Next()
		if err != nil {
			cancel()
			closeBoth()
			<-writeErr
			return err
		}
		switch f.Type {
		case frameBatch:
			var target *engine.CStream
			switch {
			case f.Side == SideLeft && !doneL:
				target = left
			case f.Side == SideRight && !doneR:
				target = right
			default:
				cancel()
				closeBoth()
				<-writeErr
				return corrupt("join batch for side %d", f.Side)
			}
			if !target.SendBatch(ctx, f.Batch) {
				closeBoth()
				<-writeErr
				return ctx.Err()
			}
		case frameDone:
			switch {
			case f.Side == SideLeft && !doneL:
				doneL = true
				left.Close()
			case f.Side == SideRight && !doneR:
				doneR = true
				right.Close()
			}
		case frameError:
			// The coordinator aborted the task; stop quietly.
			cancel()
			closeBoth()
			<-writeErr
			return nil
		default:
			cancel()
			closeBoth()
			<-writeErr
			return corrupt("unexpected frame type 0x%02x in join task", f.Type)
		}
	}
	return <-writeErr
}
