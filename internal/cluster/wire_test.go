package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/rdf"
)

// buildBatch interns the given terms into d and packs them as one batch;
// a nil term leaves the cell unbound (the OPTIONAL case).
func buildBatch(t testing.TB, d *dict.Dict, schema *engine.Schema, rows [][]*rdf.Term) *engine.ColBatch {
	t.Helper()
	bld := engine.NewColBuilder(schema)
	ids := make([]dict.ID, len(schema.Vars))
	for _, row := range rows {
		if len(row) != len(schema.Vars) {
			t.Fatalf("row has %d cells, schema %d", len(row), len(schema.Vars))
		}
		for i, cell := range row {
			if cell == nil {
				ids[i] = dict.Unbound
			} else {
				ids[i] = d.Intern(*cell)
			}
		}
		bld.AppendIDs(ids)
	}
	return bld.Take()
}

func term(t rdf.Term) *rdf.Term { return &t }

// testRows mixes IRIs, plain/typed/lang literals, blanks and unbound
// cells across enough rows to cross a bitmap byte boundary.
func testRows() [][]*rdf.Term {
	rows := [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/s1")), term(rdf.NewLiteral("plain")), nil},
		{term(rdf.NewIRI("http://ex/s2")), nil, term(rdf.Term{Kind: rdf.TermLiteral, Value: "42", Datatype: "http://www.w3.org/2001/XMLSchema#integer"})},
		{term(rdf.Term{Kind: rdf.TermBlank, Value: "b0"}), term(rdf.Term{Kind: rdf.TermLiteral, Value: "hi", Lang: "en"}), nil},
		{nil, nil, nil},
	}
	// Push past 8 rows so the presence bitmap spans two bytes.
	for i := 0; i < 7; i++ {
		rows = append(rows, [][]*rdf.Term{{term(rdf.NewIRI("http://ex/s1")), nil, term(rdf.NewLiteral("dup"))}}[0])
	}
	return rows
}

// sideLookup resolves batch schemas by side only, for tests exercising
// the codec on a single stream.
func sideLookup(schemas map[byte]*engine.Schema) SchemaLookup {
	return func(stream uint64, side byte) *engine.Schema { return schemas[side] }
}

// decodeAll runs a decoder over an encoded stream until EOF or failure.
func decodeAll(t *testing.T, raw []byte, d *dict.Dict, schemas map[byte]*engine.Schema) ([]Frame, error) {
	t.Helper()
	dec := NewDecoder(bytes.NewReader(raw), d)
	dec.SetLookup(sideLookup(schemas))
	var frames []Frame
	for {
		f, err := dec.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "name", "age"})
	rows := testRows()
	batch := buildBatch(t, sender, schema, rows)

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	if err := enc.Batch(7, SideOut, batch); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := enc.Done(7, SideOut); err != nil {
		t.Fatalf("done: %v", err)
	}

	// The receiver's dictionary is independently populated, so the
	// sender's IDs cannot be valid verbatim — decoding must remap through
	// the delta sideband.
	receiver := dict.New()
	for i := 0; i < 5; i++ {
		receiver.Intern(rdf.NewIRI("http://elsewhere/skew"))
	}
	frames, err := decodeAll(t, buf.Bytes(), receiver, map[byte]*engine.Schema{SideOut: schema})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(frames) != 2 || frames[0].Type != frameBatch || frames[1].Type != frameDone {
		t.Fatalf("got %d frames, want batch+done", len(frames))
	}
	if frames[0].Stream != 7 || frames[1].Stream != 7 {
		t.Fatalf("stream IDs %d/%d survived the wire wrong, want 7", frames[0].Stream, frames[1].Stream)
	}
	got := frames[0].Batch
	if got.Len != len(rows) {
		t.Fatalf("decoded %d rows, want %d", got.Len, len(rows))
	}
	for r, row := range rows {
		for c, want := range row {
			id := got.Cols[c][r]
			present := got.Present[c][r>>6]&(1<<(uint(r)&63)) != 0
			if want == nil {
				if id != dict.Unbound || present {
					t.Fatalf("row %d col %d: want unbound, got ID %d (present=%v)", r, c, id, present)
				}
				continue
			}
			if id == dict.Unbound || !present {
				t.Fatalf("row %d col %d: want bound, got unbound", r, c)
			}
			if have := receiver.MustLookup(id); have != *want {
				t.Fatalf("row %d col %d: decoded %+v, want %+v", r, c, have, *want)
			}
		}
	}
}

// TestWireDictionaryDeltaShipsOncePerLink sends the same terms on two
// different streams of one link: the delta must ship with the first
// batch only — remap state is link-lifetime, not per-task.
func TestWireDictionaryDeltaShipsOncePerLink(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"x"})
	mk := func(vals ...string) *engine.ColBatch {
		bld := engine.NewColBuilder(schema)
		for _, v := range vals {
			bld.AppendIDs([]dict.ID{sender.Intern(rdf.NewIRI(v))})
		}
		return bld.Take()
	}

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	if err := enc.Batch(1, SideLeft, mk("http://ex/a", "http://ex/b")); err != nil {
		t.Fatal(err)
	}
	firstLen := buf.Len()
	firstDelta := enc.DeltaBytes()
	if firstDelta == 0 {
		t.Fatal("first batch shipped no delta bytes")
	}
	// Same terms on a different stream: no new delta records, so the
	// second frame must be strictly smaller than the first.
	if err := enc.Batch(2, SideLeft, mk("http://ex/a", "http://ex/b")); err != nil {
		t.Fatal(err)
	}
	if secondLen := buf.Len() - firstLen; secondLen >= firstLen {
		t.Fatalf("second batch (%dB) did not shrink vs first (%dB): deltas re-shipped", secondLen, firstLen)
	}
	if d := enc.DeltaBytes() - firstDelta; d > 1 { // the empty-delta count byte is not delta payload
		t.Fatalf("second batch shipped %d delta bytes, want ~0", d)
	}
	if enc.SentTerms() != 2 {
		t.Fatalf("SentTerms = %d, want 2", enc.SentTerms())
	}

	receiver := dict.New()
	frames, err := decodeAll(t, buf.Bytes(), receiver, map[byte]*engine.Schema{SideLeft: schema})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	// Both batches resolve to the same local IDs through the remap table.
	for f := range frames {
		for r := 0; r < 2; r++ {
			if frames[f].Batch.Cols[0][r] != frames[0].Batch.Cols[0][r] {
				t.Fatalf("batch %d row %d: remapped ID differs across batches", f, r)
			}
		}
	}
}

// TestWireInterleavedStreams drives two tasks' frames through one link in
// interleaved order: the decoder must route each batch to its stream's
// schema and keep one shared remap table underneath.
func TestWireInterleavedStreams(t *testing.T) {
	sender := dict.New()
	schemaA := engine.NewSchema([]string{"x"})
	schemaB := engine.NewSchema([]string{"y", "z"})
	shared := term(rdf.NewIRI("http://ex/shared"))
	a1 := buildBatch(t, sender, schemaA, [][]*rdf.Term{{shared}})
	b1 := buildBatch(t, sender, schemaB, [][]*rdf.Term{{shared, term(rdf.NewLiteral("v"))}})
	a2 := buildBatch(t, sender, schemaA, [][]*rdf.Term{{term(rdf.NewIRI("http://ex/a2"))}})

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	for _, step := range []func() error{
		func() error { return enc.Batch(1, SideOut, a1) },
		func() error { return enc.Batch(2, SideOut, b1) },
		func() error { return enc.Batch(1, SideOut, a2) },
		func() error { return enc.Done(1, SideOut) },
		func() error { return enc.Cancel(9) },
		func() error { return enc.Done(2, SideOut) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}

	receiver := dict.New()
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), receiver)
	dec.SetLookup(func(stream uint64, side byte) *engine.Schema {
		switch stream {
		case 1:
			return schemaA
		case 2:
			return schemaB
		}
		return nil
	})
	var frames []Frame
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		frames = append(frames, f)
	}
	if len(frames) != 6 {
		t.Fatalf("got %d frames, want 6", len(frames))
	}
	wantStreams := []uint64{1, 2, 1, 1, 9, 2}
	wantTypes := []byte{frameBatch, frameBatch, frameBatch, frameDone, frameCancel, frameDone}
	for i, f := range frames {
		if f.Stream != wantStreams[i] || f.Type != wantTypes[i] {
			t.Fatalf("frame %d: stream %d type 0x%02x, want stream %d type 0x%02x",
				i, f.Stream, f.Type, wantStreams[i], wantTypes[i])
		}
	}
	if got := len(frames[0].Batch.Cols); got != 1 {
		t.Fatalf("stream 1 batch decoded %d cols, want 1", got)
	}
	if got := len(frames[1].Batch.Cols); got != 2 {
		t.Fatalf("stream 2 batch decoded %d cols, want 2", got)
	}
	// The shared term crossed the link once and resolves to one local ID
	// from both streams.
	if frames[0].Batch.Cols[0][0] != frames[1].Batch.Cols[0][0] {
		t.Fatal("shared term remapped differently across streams")
	}
	if dec.RemapEntries() != 3 {
		t.Fatalf("remap entries = %d, want 3 (shared, v, a2)", dec.RemapEntries())
	}
}

// TestWireSchemalessStreamInternsDeltas covers the late-batch case: a
// batch for a stream nobody recognizes is dropped, but its dictionary
// deltas still intern — they are link state, and later streams' bare IDs
// depend on them.
func TestWireSchemalessStreamInternsDeltas(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"x"})
	b1 := buildBatch(t, sender, schema, [][]*rdf.Term{{term(rdf.NewIRI("http://ex/a"))}})
	b2 := buildBatch(t, sender, schema, [][]*rdf.Term{{term(rdf.NewIRI("http://ex/a"))}})

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	if err := enc.Batch(1, SideOut, b1); err != nil { // stream 1: dropped
		t.Fatal(err)
	}
	if err := enc.Batch(2, SideOut, b2); err != nil { // stream 2: bare ID only
		t.Fatal(err)
	}

	receiver := dict.New()
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), receiver)
	dec.SetLookup(func(stream uint64, side byte) *engine.Schema {
		if stream == 2 {
			return schema
		}
		return nil
	})
	f1, err := dec.Next()
	if err != nil {
		t.Fatalf("decode dropped batch: %v", err)
	}
	if f1.Batch != nil {
		t.Fatal("schema-less stream produced a batch")
	}
	f2, err := dec.Next()
	if err != nil {
		t.Fatalf("decode second batch: %v", err)
	}
	if f2.Batch == nil {
		t.Fatal("stream 2 batch dropped")
	}
	if got := receiver.MustLookup(f2.Batch.Cols[0][0]); got != rdf.NewIRI("http://ex/a") {
		t.Fatalf("bare ID resolved to %+v: delta from dropped batch was not interned", got)
	}
}

func TestWireRejectsCorruptInput(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"x", "y"})
	batch := buildBatch(t, sender, schema, [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/a")), term(rdf.NewLiteral("v"))},
	})
	var valid bytes.Buffer
	enc := NewEncoder(&valid, sender)
	if err := enc.Batch(1, SideOut, batch); err != nil {
		t.Fatal(err)
	}

	isCorrupt := func(err error) bool {
		var ce errCorrupt
		return errors.As(err, &ce)
	}

	t.Run("truncated", func(t *testing.T) {
		raw := valid.Bytes()
		for cut := 1; cut < len(raw); cut++ {
			_, err := decodeAll(t, raw[:cut], dict.New(), map[byte]*engine.Schema{SideOut: schema})
			if err == nil {
				t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(raw))
			}
		}
	})

	t.Run("unknown frame type", func(t *testing.T) {
		_, err := decodeAll(t, []byte{0x7f, 0x00, 0x00}, dict.New(), nil)
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error, got %v", err)
		}
	})

	t.Run("bad side", func(t *testing.T) {
		raw := append([]byte(nil), valid.Bytes()...)
		// Frame layout: type at 0, single-byte uvarint stream ID at 1,
		// single-byte uvarint length at 2 (the payload is well under 128
		// bytes), side byte at 3.
		raw[3] = 9
		_, err := decodeAll(t, raw, dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if err == nil {
			t.Fatal("corrupted side byte decoded cleanly")
		}
	})

	t.Run("unknown dictionary ID", func(t *testing.T) {
		// A batch whose column references an ID with no preceding delta:
		// craft by encoding with a second encoder that believes the ID
		// was already sent.
		var buf2 bytes.Buffer
		enc2 := NewEncoder(&buf2, sender)
		enc2.sent[batch.Cols[0][0]] = struct{}{}
		enc2.sent[batch.Cols[1][0]] = struct{}{}
		if err := enc2.Batch(1, SideOut, batch); err != nil {
			t.Fatal(err)
		}
		_, err := decodeAll(t, buf2.Bytes(), dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for unmapped ID, got %v", err)
		}
	})

	t.Run("trailing garbage in batch", func(t *testing.T) {
		raw := append([]byte(nil), valid.Bytes()...)
		// Grow the declared payload length and append junk bytes. The
		// frame here is small, so its length is a single-byte uvarint at
		// offset 2 (after the type and stream bytes).
		raw[2] += 2
		raw = append(raw, 0xff, 0xff)
		_, err := decodeAll(t, raw, dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for trailing bytes, got %v", err)
		}
	})

	t.Run("oversized row count", func(t *testing.T) {
		var payload []byte
		var tmp [binary.MaxVarintLen64]byte
		payload = append(payload, SideOut)
		payload = putUvarint(payload, &tmp, 0)               // no deltas
		payload = putUvarint(payload, &tmp, uint64(1<<20)+1) // rows over the wire limit
		payload = putUvarint(payload, &tmp, 2)               // cols
		var buf bytes.Buffer
		e := NewEncoder(&buf, sender)
		e.mu.Lock()
		err := e.writeFrameLocked(frameBatch, 1, payload)
		e.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		_, derr := decodeAll(t, buf.Bytes(), dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(derr) {
			t.Fatalf("want corrupt-frame error for oversized rows, got %v", derr)
		}
	})
}

// TestWireEncodeSteadyStateAllocs guards the codec hot path: once a
// term's delta has shipped, encoding further batches of known terms must
// not allocate — scratch buffers come from the pool and the delta set
// stays warm.
func TestWireEncodeSteadyStateAllocs(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "name", "age"})
	batch := buildBatch(t, sender, schema, testRows())
	enc := NewEncoder(io.Discard, sender)
	if err := enc.Batch(1, SideLeft, batch); err != nil { // warm-up ships deltas
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := enc.Batch(1, SideLeft, batch); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state encode allocates %.1f objects per batch, want 0", avg)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "name", "age"})
	batch := buildBatch(b, sender, schema, testRows())
	enc := NewEncoder(io.Discard, sender)
	if err := enc.Batch(1, SideLeft, batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Batch(1, SideLeft, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "name", "age"})
	batch := buildBatch(b, sender, schema, testRows())
	var warm, steady bytes.Buffer
	enc := NewEncoder(io.MultiWriter(&warm, &steady), sender)
	if err := enc.Batch(1, SideOut, batch); err != nil {
		b.Fatal(err)
	}
	steady.Reset() // keep only post-delta frames in the steady buffer
	if err := enc.Batch(1, SideOut, batch); err != nil {
		b.Fatal(err)
	}
	receiver := dict.New()
	dec := NewDecoder(bytes.NewReader(warm.Bytes()), receiver)
	dec.SetLookup(sideLookup(map[byte]*engine.Schema{SideOut: schema}))
	if _, err := dec.Next(); err != nil { // intern the deltas once
		b.Fatal(err)
	}
	frame := steady.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bytes.NewReader(frame)
		dec.r.Reset(r)
		if _, err := dec.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzDecode throws arbitrary bytes at the decoder: any input may be
// rejected, none may panic or hang. Seeds cover the happy path so
// mutations explore near-valid streams.
func FuzzDecode(f *testing.F) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "o"})
	batch := buildBatch(f, sender, schema, [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/a")), term(rdf.Term{Kind: rdf.TermLiteral, Value: "x", Lang: "en"})},
		{term(rdf.NewIRI("http://ex/b")), nil},
	})
	var seed bytes.Buffer
	enc := NewEncoder(&seed, sender)
	if err := enc.Batch(1, SideLeft, batch); err != nil {
		f.Fatal(err)
	}
	if err := enc.Batch(2, SideRight, batch); err != nil {
		f.Fatal(err)
	}
	if err := enc.Done(1, SideLeft); err != nil {
		f.Fatal(err)
	}
	if err := enc.Cancel(3); err != nil {
		f.Fatal(err)
	}
	if err := enc.Error(2, "boom"); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{frameBatch, 0x01, 0x01, 0x00})
	f.Add([]byte{frameDone, 0x01, 0x01, 0x03})
	f.Add([]byte{frameCancel, 0x09, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		d := dict.New()
		dec := NewDecoder(bytes.NewReader(raw), d)
		// Streams above 2 deliberately have no schema: fuzzed batches for
		// them must drop or reject, not crash.
		dec.SetLookup(func(stream uint64, side byte) *engine.Schema {
			if stream == 1 || stream == 2 {
				return schema
			}
			return nil
		})
		for i := 0; i < 1000; i++ {
			frame, err := dec.Next()
			if err != nil {
				return
			}
			if frame.Type == frameBatch && frame.Batch != nil {
				b := frame.Batch
				if b.Len < 0 || b.Len > maxWireRows || len(b.Cols) != len(schema.Vars) {
					t.Fatalf("decoded batch out of bounds: len=%d cols=%d", b.Len, len(b.Cols))
				}
				for _, col := range b.Cols {
					for _, id := range col {
						if id != dict.Unbound {
							if tm := d.MustLookup(id); tm == (rdf.Term{}) {
								t.Fatalf("decoded ID %d not in dictionary", id)
							}
						}
					}
				}
			}
		}
	})
}
