package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/rdf"
)

// buildBatch interns the given terms into d and packs them as one batch;
// a nil term leaves the cell unbound (the OPTIONAL case).
func buildBatch(t testing.TB, d *dict.Dict, schema *engine.Schema, rows [][]*rdf.Term) *engine.ColBatch {
	t.Helper()
	bld := engine.NewColBuilder(schema)
	ids := make([]dict.ID, len(schema.Vars))
	for _, row := range rows {
		if len(row) != len(schema.Vars) {
			t.Fatalf("row has %d cells, schema %d", len(row), len(schema.Vars))
		}
		for i, cell := range row {
			if cell == nil {
				ids[i] = dict.Unbound
			} else {
				ids[i] = d.Intern(*cell)
			}
		}
		bld.AppendIDs(ids)
	}
	return bld.Take()
}

func term(t rdf.Term) *rdf.Term { return &t }

// testRows mixes IRIs, plain/typed/lang literals, blanks and unbound
// cells across enough rows to cross a bitmap byte boundary.
func testRows() [][]*rdf.Term {
	rows := [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/s1")), term(rdf.NewLiteral("plain")), nil},
		{term(rdf.NewIRI("http://ex/s2")), nil, term(rdf.Term{Kind: rdf.TermLiteral, Value: "42", Datatype: "http://www.w3.org/2001/XMLSchema#integer"})},
		{term(rdf.Term{Kind: rdf.TermBlank, Value: "b0"}), term(rdf.Term{Kind: rdf.TermLiteral, Value: "hi", Lang: "en"}), nil},
		{nil, nil, nil},
	}
	// Push past 8 rows so the presence bitmap spans two bytes.
	for i := 0; i < 7; i++ {
		rows = append(rows, [][]*rdf.Term{{term(rdf.NewIRI("http://ex/s1")), nil, term(rdf.NewLiteral("dup"))}}[0])
	}
	return rows
}

// decodeAll runs a decoder over an encoded stream until EOF or failure.
func decodeAll(t *testing.T, raw []byte, d *dict.Dict, schemas map[byte]*engine.Schema) ([]Frame, error) {
	t.Helper()
	dec := NewDecoder(bytes.NewReader(raw), d)
	for side, s := range schemas {
		dec.SetSchema(side, s)
	}
	var frames []Frame
	for {
		f, err := dec.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "name", "age"})
	rows := testRows()
	batch := buildBatch(t, sender, schema, rows)

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	if err := enc.Batch(SideOut, batch); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := enc.Done(SideOut); err != nil {
		t.Fatalf("done: %v", err)
	}

	// The receiver's dictionary is independently populated, so the
	// sender's IDs cannot be valid verbatim — decoding must remap through
	// the delta sideband.
	receiver := dict.New()
	for i := 0; i < 5; i++ {
		receiver.Intern(rdf.NewIRI("http://elsewhere/skew"))
	}
	frames, err := decodeAll(t, buf.Bytes(), receiver, map[byte]*engine.Schema{SideOut: schema})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(frames) != 2 || frames[0].Type != frameBatch || frames[1].Type != frameDone {
		t.Fatalf("got %d frames, want batch+done", len(frames))
	}
	got := frames[0].Batch
	if got.Len != len(rows) {
		t.Fatalf("decoded %d rows, want %d", got.Len, len(rows))
	}
	for r, row := range rows {
		for c, want := range row {
			id := got.Cols[c][r]
			present := got.Present[c][r>>6]&(1<<(uint(r)&63)) != 0
			if want == nil {
				if id != dict.Unbound || present {
					t.Fatalf("row %d col %d: want unbound, got ID %d (present=%v)", r, c, id, present)
				}
				continue
			}
			if id == dict.Unbound || !present {
				t.Fatalf("row %d col %d: want bound, got unbound", r, c)
			}
			if have := receiver.MustLookup(id); have != *want {
				t.Fatalf("row %d col %d: decoded %+v, want %+v", r, c, have, *want)
			}
		}
	}
}

func TestWireDictionaryDeltaShipsOnce(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"x"})
	mk := func(vals ...string) *engine.ColBatch {
		bld := engine.NewColBuilder(schema)
		for _, v := range vals {
			bld.AppendIDs([]dict.ID{sender.Intern(rdf.NewIRI(v))})
		}
		return bld.Take()
	}

	var buf bytes.Buffer
	enc := NewEncoder(&buf, sender)
	if err := enc.Batch(SideLeft, mk("http://ex/a", "http://ex/b")); err != nil {
		t.Fatal(err)
	}
	firstLen := buf.Len()
	// Same terms again: no new delta records, so the second frame must be
	// strictly smaller than the first.
	if err := enc.Batch(SideLeft, mk("http://ex/a", "http://ex/b")); err != nil {
		t.Fatal(err)
	}
	if secondLen := buf.Len() - firstLen; secondLen >= firstLen {
		t.Fatalf("second batch (%dB) did not shrink vs first (%dB): deltas re-shipped", secondLen, firstLen)
	}
	if enc.SentTerms() != 2 {
		t.Fatalf("SentTerms = %d, want 2", enc.SentTerms())
	}

	receiver := dict.New()
	frames, err := decodeAll(t, buf.Bytes(), receiver, map[byte]*engine.Schema{SideLeft: schema})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	// Both batches resolve to the same local IDs through the remap table.
	for f := range frames {
		for r := 0; r < 2; r++ {
			if frames[f].Batch.Cols[0][r] != frames[0].Batch.Cols[0][r] {
				t.Fatalf("batch %d row %d: remapped ID differs across batches", f, r)
			}
		}
	}
}

func TestWireRejectsCorruptInput(t *testing.T) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"x", "y"})
	batch := buildBatch(t, sender, schema, [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/a")), term(rdf.NewLiteral("v"))},
	})
	var valid bytes.Buffer
	enc := NewEncoder(&valid, sender)
	if err := enc.Batch(SideOut, batch); err != nil {
		t.Fatal(err)
	}

	isCorrupt := func(err error) bool {
		var ce errCorrupt
		return errors.As(err, &ce)
	}

	t.Run("truncated", func(t *testing.T) {
		raw := valid.Bytes()
		for cut := 1; cut < len(raw); cut++ {
			_, err := decodeAll(t, raw[:cut], dict.New(), map[byte]*engine.Schema{SideOut: schema})
			if err == nil {
				t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(raw))
			}
		}
	})

	t.Run("unknown frame type", func(t *testing.T) {
		_, err := decodeAll(t, []byte{0x7f, 0x00}, dict.New(), nil)
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error, got %v", err)
		}
	})

	t.Run("bad side", func(t *testing.T) {
		raw := append([]byte(nil), valid.Bytes()...)
		// Frame layout: type at 0, single-byte uvarint length at 1 (the
		// payload is well under 128 bytes), side byte at 2.
		raw[2] = 9
		_, err := decodeAll(t, raw, dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if err == nil {
			t.Fatal("corrupted side byte decoded cleanly")
		}
	})

	t.Run("missing schema", func(t *testing.T) {
		_, err := decodeAll(t, valid.Bytes(), dict.New(), nil)
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for schema-less side, got %v", err)
		}
	})

	t.Run("unknown dictionary ID", func(t *testing.T) {
		// A batch whose column references an ID with no preceding delta:
		// craft by encoding with a second encoder that believes the ID
		// was already sent.
		var buf2 bytes.Buffer
		enc2 := NewEncoder(&buf2, sender)
		enc2.sent[batch.Cols[0][0]] = struct{}{}
		enc2.sent[batch.Cols[1][0]] = struct{}{}
		if err := enc2.Batch(SideOut, batch); err != nil {
			t.Fatal(err)
		}
		_, err := decodeAll(t, buf2.Bytes(), dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for unmapped ID, got %v", err)
		}
	})

	t.Run("trailing garbage in batch", func(t *testing.T) {
		raw := append([]byte(nil), valid.Bytes()...)
		// Grow the declared payload length and append junk bytes. The
		// frame here is small, so its length is a single-byte uvarint at
		// offset 1.
		raw[1] += 2
		raw = append(raw, 0xff, 0xff)
		_, err := decodeAll(t, raw, dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for trailing bytes, got %v", err)
		}
	})

	t.Run("oversized row count", func(t *testing.T) {
		var buf bytes.Buffer
		e := NewEncoder(&buf, sender)
		e.buf = e.buf[:0]
		e.buf = append(e.buf, SideOut)
		e.putUvarint(0)                 // no deltas
		e.putUvarint(uint64(1<<20) + 1) // rows over the wire limit
		e.putUvarint(2)                 // cols
		if err := e.writeFrameLocked(frameBatch, e.buf); err != nil {
			t.Fatal(err)
		}
		_, err := decodeAll(t, buf.Bytes(), dict.New(), map[byte]*engine.Schema{SideOut: schema})
		if !isCorrupt(err) {
			t.Fatalf("want corrupt-frame error for oversized rows, got %v", err)
		}
	})
}

// FuzzDecode throws arbitrary bytes at the decoder: any input may be
// rejected, none may panic or hang. Seeds cover the happy path so
// mutations explore near-valid streams.
func FuzzDecode(f *testing.F) {
	sender := dict.New()
	schema := engine.NewSchema([]string{"s", "o"})
	batch := buildBatch(f, sender, schema, [][]*rdf.Term{
		{term(rdf.NewIRI("http://ex/a")), term(rdf.Term{Kind: rdf.TermLiteral, Value: "x", Lang: "en"})},
		{term(rdf.NewIRI("http://ex/b")), nil},
	})
	var seed bytes.Buffer
	enc := NewEncoder(&seed, sender)
	if err := enc.Batch(SideLeft, batch); err != nil {
		f.Fatal(err)
	}
	if err := enc.Batch(SideRight, batch); err != nil {
		f.Fatal(err)
	}
	if err := enc.Done(SideLeft); err != nil {
		f.Fatal(err)
	}
	if err := enc.Error("boom"); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{frameBatch, 0x01, 0x00})
	f.Add([]byte{frameDone, 0x01, 0x03})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		d := dict.New()
		dec := NewDecoder(bytes.NewReader(raw), d)
		dec.SetSchema(SideLeft, schema)
		dec.SetSchema(SideRight, schema)
		// SideOut deliberately has no schema: fuzzed batches for it must
		// be rejected, not crash.
		for i := 0; i < 1000; i++ {
			frame, err := dec.Next()
			if err != nil {
				return
			}
			if frame.Type == frameBatch {
				b := frame.Batch
				if b.Len < 0 || b.Len > maxWireRows || len(b.Cols) != len(schema.Vars) {
					t.Fatalf("decoded batch out of bounds: len=%d cols=%d", b.Len, len(b.Cols))
				}
				for _, col := range b.Cols {
					for _, id := range col {
						if id != dict.Unbound {
							if tm := d.MustLookup(id); tm == (rdf.Term{}) {
								t.Fatalf("decoded ID %d not in dictionary", id)
							}
						}
					}
				}
			}
		}
	})
}
