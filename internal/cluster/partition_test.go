package cluster

import (
	"testing"

	"ontario/internal/bridge"
	"ontario/internal/catalog"
	"ontario/internal/lslod"
)

// sourceFingerprints counts every row of data in the lake per source:
// triples for RDF graphs, table rows for relational databases. Summing
// the counts across partitions must reproduce the full lake exactly —
// partitioning may drop nothing and duplicate nothing (unmapped tables,
// which are deliberately replicated, are excluded from the sum check).
func sourceFingerprints(t *testing.T, cat *catalog.Catalog) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, id := range cat.SourceIDs() {
		src := cat.Source(id)
		switch src.Model {
		case catalog.ModelRDF:
			out[id] = src.Graph.Len()
		case catalog.ModelRelational:
			for _, tn := range src.DB.TableNames() {
				out[id+"/"+tn] = src.DB.Table(tn).RowCount()
			}
		default:
			t.Fatalf("source %s: unexpected model %v", id, src.Model)
		}
	}
	return out
}

func buildCatalog(t *testing.T, part, of int) *catalog.Catalog {
	t.Helper()
	lk, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		t.Fatalf("building lake: %v", err)
	}
	if of > 0 {
		if err := PartitionLake(lk.Lake, part, of); err != nil {
			t.Fatalf("partitioning %d/%d: %v", part, of, err)
		}
	}
	cat := bridge.LakeCatalog(lk.Lake)
	if cat == nil {
		t.Fatal("lake catalog bridge not wired")
	}
	return cat
}

// TestPartitionCompleteness checks that for every worker count the
// partitions of each mapped source sum back to the full lake: no row
// lost, none counted twice.
func TestPartitionCompleteness(t *testing.T) {
	full := sourceFingerprints(t, buildCatalog(t, 0, 0))
	for _, of := range []int{1, 2, 3} {
		sums := make(map[string]int)
		for part := 0; part < of; part++ {
			fp := sourceFingerprints(t, buildCatalog(t, part, of))
			for k, v := range fp {
				sums[k] += v
			}
		}
		for k, want := range full {
			got := sums[k]
			// Tables without a class/join mapping are replicated to every
			// partition on purpose; everything in LSLOD is mapped, so any
			// multiple of the full count other than 1x is a bug.
			if got != want {
				t.Errorf("of=%d: %s has %d rows across partitions, full lake has %d", of, k, got, want)
			}
		}
	}
}

// TestPartitionDisjointAndBalanced checks that two partitions are
// genuinely disjoint (each strictly smaller than the whole) and neither
// is empty for the big sources — a degenerate hash would leave one
// worker owning everything.
func TestPartitionDisjointAndBalanced(t *testing.T) {
	full := sourceFingerprints(t, buildCatalog(t, 0, 0))
	p0 := sourceFingerprints(t, buildCatalog(t, 0, 2))
	p1 := sourceFingerprints(t, buildCatalog(t, 1, 2))
	for k, want := range full {
		if want < 8 {
			continue // tiny tables may legitimately land all on one side
		}
		if p0[k] == 0 || p1[k] == 0 {
			t.Errorf("%s: lopsided split %d/%d of %d rows", k, p0[k], p1[k], want)
		}
		if p0[k] >= want || p1[k] >= want {
			t.Errorf("%s: partition did not shrink (%d and %d of %d rows)", k, p0[k], p1[k], want)
		}
	}
}

// TestPartitionValidation rejects nonsensical partition identities.
func TestPartitionValidation(t *testing.T) {
	lk, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}, {3, 2}} {
		if err := PartitionLake(lk.Lake, bad[0], bad[1]); err == nil {
			t.Errorf("PartitionLake(%d, %d) accepted", bad[0], bad[1])
		}
	}
	if err := PartitionLake(struct{}{}, 0, 2); err == nil {
		t.Error("PartitionLake accepted a non-lake value")
	}
}
