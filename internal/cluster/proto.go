package cluster

import (
	"fmt"

	"ontario/internal/core"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
)

// taskHeader opens every task stream (the JSON payload of the stream's
// first frame). Exactly one of Scan/Join/Frag is set for those kinds; a
// hello task carries none and the worker replies with a WorkerInfo frame
// on the same stream.
type taskHeader struct {
	Kind string    `json:"kind"` // "scan", "join", "frag" or "hello"
	Scan *scanTask `json:"scan,omitempty"`
	Join *joinTask `json:"join,omitempty"`
	Frag *fragTask `json:"frag,omitempty"`
}

// scanTask asks a worker to execute one wrapper request against its
// partition of a source and stream the result batches back as SideOut.
type scanTask struct {
	SourceID string      `json:"source"`
	Req      wireRequest `json:"req"`
	Schema   []string    `json:"schema"`
	Env      wireEnv     `json:"env"`
}

// joinTask asks a worker to symmetric-hash-join the SideLeft/SideRight
// batches the coordinator shuffles to it, streaming joined SideOut
// batches back.
type joinTask struct {
	JoinVars []string `json:"join_vars"`
	Left     []string `json:"left"`
	Right    []string `json:"right"`
	Out      []string `json:"out"`
	Env      wireEnv  `json:"env"`
}

// fragTask asks a worker to run a whole serializable plan subtree — a
// co-partitioned join pushdown — against its partition, streaming only
// the local join results back as SideOut: zero shuffled batches.
type fragTask struct {
	Root *wireFrag `json:"root"`
	Out  []string  `json:"out"`
	Env  wireEnv   `json:"env"`
}

// wireFrag is the closed serializable subset of the plan AST a
// co-partitioned fragment can contain: single-star scans, symmetric-hash
// joins, filters and unions. fragToWire proves membership; anything else
// stays on the coordinator.
type wireFrag struct {
	Kind     string       `json:"kind"`             // "scan", "join", "filter", "union"
	Vars     []string     `json:"vars"`             // the node's output schema
	SourceID string       `json:"source,omitempty"` // scan
	Req      *wireRequest `json:"req,omitempty"`    // scan
	JoinVars []string     `json:"join_vars,omitempty"`
	L        *wireFrag    `json:"l,omitempty"`        // join
	R        *wireFrag    `json:"r,omitempty"`        // join
	Filters  []*wireExpr  `json:"filters,omitempty"`  // filter
	Children []*wireFrag  `json:"children,omitempty"` // union
}

// fragToWire serializes a plan subtree for worker-side execution,
// erroring on any node kind the fragment protocol cannot carry.
func fragToWire(n core.PlanNode) (*wireFrag, error) {
	switch v := n.(type) {
	case *core.ServiceNode:
		req, err := requestToWire(v.Req)
		if err != nil {
			return nil, err
		}
		return &wireFrag{Kind: "scan", Vars: v.Vars(), SourceID: v.SourceID, Req: &req}, nil
	case *core.JoinNode:
		if v.Op != core.JoinSymmetricHash {
			return nil, fmt.Errorf("cluster: fragment cannot carry join operator %v", v.Op)
		}
		l, err := fragToWire(v.L)
		if err != nil {
			return nil, err
		}
		r, err := fragToWire(v.R)
		if err != nil {
			return nil, err
		}
		return &wireFrag{Kind: "join", Vars: v.Vars(), JoinVars: v.JoinVars, L: l, R: r}, nil
	case *core.FilterNode:
		ch, err := fragToWire(v.Child)
		if err != nil {
			return nil, err
		}
		var exprs []*wireExpr
		for _, e := range v.Exprs {
			w, err := exprToWire(e)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, w)
		}
		return &wireFrag{Kind: "filter", Vars: v.Vars(), Filters: exprs, Children: []*wireFrag{ch}}, nil
	case *core.UnionNode:
		out := &wireFrag{Kind: "union", Vars: v.Vars()}
		for _, c := range v.Children {
			ch, err := fragToWire(c)
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, ch)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cluster: plan node %T is not fragment-serializable", n)
	}
}

// wireEnv ships the execution-shaping slice of core.Options plus the
// simulation parameters a worker needs to reproduce the coordinator's
// behavior on its partition.
type wireEnv struct {
	Network string  `json:"network,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	Beta    float64 `json:"beta,omitempty"`
	Naive   bool    `json:"naive,omitempty"`
	Batch   int     `json:"batch,omitempty"`
	Par     int     `json:"par,omitempty"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
}

func envToWire(env core.FragmentEnv) wireEnv {
	return wireEnv{
		Network: env.Opts.Network.Name,
		Alpha:   env.Opts.Network.Alpha,
		Beta:    env.Opts.Network.Beta,
		Naive:   env.Opts.Translation == wrapper.TranslationNaive,
		Batch:   env.Opts.BatchSize,
		Par:     env.Opts.ProbeParallelism,
		Scale:   env.Scale,
		Seed:    env.Seed,
	}
}

func (we wireEnv) options() core.Options {
	opts := core.Options{
		Network:          netsim.Profile{Name: we.Network, Alpha: we.Alpha, Beta: we.Beta},
		BatchSize:        we.Batch,
		ProbeParallelism: we.Par,
	}
	if we.Naive {
		opts.Translation = wrapper.TranslationNaive
	}
	return opts
}

// The wire forms below mirror the closed AST the planner produces. They
// exist so task headers stay plain JSON: the sparql.Expr interface cannot
// unmarshal itself, so expressions travel as a type-tagged tree.

type wireTerm struct {
	Kind     uint8  `json:"k"`
	Value    string `json:"v"`
	Datatype string `json:"d,omitempty"`
	Lang     string `json:"l,omitempty"`
}

func termToWire(t rdf.Term) wireTerm {
	return wireTerm{Kind: uint8(t.Kind), Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
}

func (w wireTerm) term() rdf.Term {
	return rdf.Term{Kind: rdf.TermKind(w.Kind), Value: w.Value, Datatype: w.Datatype, Lang: w.Lang}
}

type wireNode struct {
	Var  string    `json:"var,omitempty"`
	Term *wireTerm `json:"term,omitempty"`
}

func nodeToWire(n sparql.Node) wireNode {
	if n.IsVar {
		return wireNode{Var: n.Var}
	}
	t := termToWire(n.Term)
	return wireNode{Term: &t}
}

func (w wireNode) node() sparql.Node {
	if w.Term != nil {
		return sparql.TermNode(w.Term.term())
	}
	return sparql.VarNode(w.Var)
}

type wirePattern struct {
	S wireNode `json:"s"`
	P wireNode `json:"p"`
	O wireNode `json:"o"`
}

type wireStar struct {
	SubjectVar string        `json:"subject"`
	Class      string        `json:"class"`
	Patterns   []wirePattern `json:"patterns"`
}

type wireExpr struct {
	Kind string      `json:"k"` // "var" "const" "cmp" "logic" "not" "func"
	Name string      `json:"n,omitempty"`
	Op   int         `json:"o,omitempty"`
	Term *wireTerm   `json:"t,omitempty"`
	Args []*wireExpr `json:"a,omitempty"`
}

func exprToWire(e sparql.Expr) (*wireExpr, error) {
	switch v := e.(type) {
	case *sparql.VarExpr:
		return &wireExpr{Kind: "var", Name: v.Name}, nil
	case *sparql.ConstExpr:
		t := termToWire(v.Term)
		return &wireExpr{Kind: "const", Term: &t}, nil
	case *sparql.CompareExpr:
		l, err := exprToWire(v.L)
		if err != nil {
			return nil, err
		}
		r, err := exprToWire(v.R)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "cmp", Op: int(v.Op), Args: []*wireExpr{l, r}}, nil
	case *sparql.LogicExpr:
		l, err := exprToWire(v.L)
		if err != nil {
			return nil, err
		}
		r, err := exprToWire(v.R)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "logic", Op: int(v.Op), Args: []*wireExpr{l, r}}, nil
	case *sparql.NotExpr:
		x, err := exprToWire(v.X)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "not", Args: []*wireExpr{x}}, nil
	case *sparql.FuncExpr:
		args := make([]*wireExpr, len(v.Args))
		for i, a := range v.Args {
			w, err := exprToWire(a)
			if err != nil {
				return nil, err
			}
			args[i] = w
		}
		return &wireExpr{Kind: "func", Name: v.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("cluster: unsupported filter expression %T", e)
	}
}

func (w *wireExpr) expr() (sparql.Expr, error) {
	if w == nil {
		return nil, fmt.Errorf("cluster: nil expression on wire")
	}
	arg := func(i int) (sparql.Expr, error) {
		if i >= len(w.Args) {
			return nil, fmt.Errorf("cluster: %s expression missing operand %d", w.Kind, i)
		}
		return w.Args[i].expr()
	}
	switch w.Kind {
	case "var":
		return &sparql.VarExpr{Name: w.Name}, nil
	case "const":
		if w.Term == nil {
			return nil, fmt.Errorf("cluster: const expression without term")
		}
		return &sparql.ConstExpr{Term: w.Term.term()}, nil
	case "cmp":
		l, err := arg(0)
		if err != nil {
			return nil, err
		}
		r, err := arg(1)
		if err != nil {
			return nil, err
		}
		return &sparql.CompareExpr{Op: sparql.CompareOp(w.Op), L: l, R: r}, nil
	case "logic":
		l, err := arg(0)
		if err != nil {
			return nil, err
		}
		r, err := arg(1)
		if err != nil {
			return nil, err
		}
		return &sparql.LogicExpr{Op: sparql.LogicOp(w.Op), L: l, R: r}, nil
	case "not":
		x, err := arg(0)
		if err != nil {
			return nil, err
		}
		return &sparql.NotExpr{X: x}, nil
	case "func":
		args := make([]sparql.Expr, len(w.Args))
		for i := range w.Args {
			a, err := w.Args[i].expr()
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return &sparql.FuncExpr{Name: w.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown wire expression kind %q", w.Kind)
	}
}

type wireBinding map[string]wireTerm

func bindingToWire(b sparql.Binding) wireBinding {
	if b == nil {
		return nil
	}
	out := make(wireBinding, len(b))
	for v, t := range b {
		out[v] = termToWire(t)
	}
	return out
}

func (w wireBinding) binding() sparql.Binding {
	if w == nil {
		return nil
	}
	out := make(sparql.Binding, len(w))
	for v, t := range w {
		out[v] = t.term()
	}
	return out
}

type wireRequest struct {
	Stars   []wireStar    `json:"stars"`
	Filters []*wireExpr   `json:"filters,omitempty"`
	Seed    wireBinding   `json:"seed,omitempty"`
	Seeds   []wireBinding `json:"seeds,omitempty"`
}

func requestToWire(r *wrapper.Request) (wireRequest, error) {
	out := wireRequest{Stars: make([]wireStar, len(r.Stars))}
	for i, s := range r.Stars {
		ws := wireStar{SubjectVar: s.SubjectVar, Class: s.Class, Patterns: make([]wirePattern, len(s.Patterns))}
		for j, tp := range s.Patterns {
			ws.Patterns[j] = wirePattern{S: nodeToWire(tp.S), P: nodeToWire(tp.P), O: nodeToWire(tp.O)}
		}
		out.Stars[i] = ws
	}
	for _, f := range r.Filters {
		w, err := exprToWire(f)
		if err != nil {
			return wireRequest{}, err
		}
		out.Filters = append(out.Filters, w)
	}
	out.Seed = bindingToWire(r.Seed)
	for _, s := range r.Seeds {
		out.Seeds = append(out.Seeds, bindingToWire(s))
	}
	return out, nil
}

func (w wireRequest) request() (*wrapper.Request, error) {
	out := &wrapper.Request{Stars: make([]*wrapper.StarQuery, len(w.Stars))}
	for i, ws := range w.Stars {
		s := &wrapper.StarQuery{SubjectVar: ws.SubjectVar, Class: ws.Class, Patterns: make([]sparql.TriplePattern, len(ws.Patterns))}
		for j, wp := range ws.Patterns {
			s.Patterns[j] = sparql.TriplePattern{S: wp.S.node(), P: wp.P.node(), O: wp.O.node()}
		}
		out.Stars[i] = s
	}
	for _, f := range w.Filters {
		e, err := f.expr()
		if err != nil {
			return nil, err
		}
		out.Filters = append(out.Filters, e)
	}
	out.Seed = w.Seed.binding()
	for _, s := range w.Seeds {
		out.Seeds = append(out.Seeds, s.binding())
	}
	return out, nil
}

// WorkerInfo is a worker's hello/health reply: its session epoch,
// partition identity and shuffle counters, surfaced through the
// coordinator's /healthz and /metrics. The link handshake carries one
// proactively on stream 0 of every accepted connection.
type WorkerInfo struct {
	// Epoch identifies the worker process session: it changes on every
	// restart, so a coordinator can tell a reconnect to the same session
	// from one to a reborn worker whose remap state is gone.
	Epoch     int64 `json:"epoch"`
	Partition int   `json:"partition"`
	Of        int   `json:"of"`
	// Scheme is the partitioning function recorded on every source of the
	// worker's catalog ("subject"), or empty when the catalog is not
	// uniformly partitioned; the coordinator only pushes co-partitioned
	// joins when all workers agree on it.
	Scheme          string `json:"scheme,omitempty"`
	Active          int64  `json:"active_fragments"`
	Queued          int64  `json:"queued_fragments"`
	BatchesIn       int64  `json:"batches_in"`
	BatchesOut      int64  `json:"batches_out"`
	BytesIn         int64  `json:"bytes_in"`
	BytesOut        int64  `json:"bytes_out"`
	ShuffledBatches int64  `json:"shuffled_batches"`
	ShuffledBytes   int64  `json:"shuffled_bytes"`
	DictDeltaBytes  int64  `json:"dict_delta_bytes"`
	// RemapEntries sums the live links' current remap-table sizes (per
	// persistent link, not cumulative across finished tasks).
	RemapEntries int64 `json:"remap_entries"`
	Terms        int   `json:"terms"`
}
