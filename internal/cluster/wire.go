// Package cluster distributes query execution across ontario-server
// processes. A coordinator parses, optimizes and caches plans exactly as
// a single node does, then executes leaf services and symmetric-hash
// joins against a pool of workers, each owning one hash-partition of the
// lake. Intermediate results cross processes as binary columnar batches:
// varint-framed dict.ID columns plus presence bitmaps, with a
// per-connection dictionary-delta sideband so a receiver remaps the
// sender's per-lake IDs without full terms shipping on every row. The
// package also provides a router mode that spreads clients over N
// coordinator replicas with plan-cache affinity and a shared admission
// budget.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/rdf"
)

// Frame types of the shuffle wire protocol. Every frame on a task
// connection is a type byte, a uvarint payload length, and the payload.
const (
	frameTask  = 0x01 // JSON task header; the first frame of a connection
	frameBatch = 0x02 // columnar batch: side byte + dict deltas + columns
	frameDone  = 0x03 // one side byte: no more batches for that side
	frameError = 0x04 // UTF-8 error message; aborts the task
	frameHello = 0x05 // JSON worker status reply (health probe)
)

// Stream sides within a task. A scan task only carries SideOut (worker to
// coordinator); a join task's inputs arrive as SideLeft/SideRight and its
// results leave as SideOut.
const (
	SideOut   byte = 0
	SideLeft  byte = 1
	SideRight byte = 2
)

// Wire limits. The decoder rejects any frame crossing them before
// allocating, so a truncated or corrupt stream fails fast instead of
// ballooning memory.
const (
	maxFramePayload = 64 << 20
	maxWireRows     = 1 << 20
	maxWireCols     = 1 << 12
)

// errCorrupt tags every malformed-input failure so tests (and the fuzz
// harness) can distinguish rejection from a crash.
type errCorrupt struct{ msg string }

func (e errCorrupt) Error() string { return "cluster: corrupt frame: " + e.msg }

func corrupt(format string, args ...any) error {
	return errCorrupt{msg: fmt.Sprintf(format, args...)}
}

// Encoder writes frames to one end of a task connection. Terms cross the
// wire once per connection: the first batch carrying a dictionary ID
// prepends a (senderID, term) delta record, and every later occurrence
// ships as the bare varint ID, resolved by the receiver's remap table.
// An Encoder is safe for concurrent use — shuffle partitioners for the
// left and right side of a join share the connection.
type Encoder struct {
	mu    sync.Mutex
	w     *bufio.Writer
	d     *dict.Dict
	sent  map[dict.ID]struct{}
	buf   []byte
	fresh []dict.ID
	tmp   [binary.MaxVarintLen64]byte

	batches atomic.Int64
	bytes   atomic.Int64
}

// NewEncoder returns an encoder over w resolving IDs through d.
func NewEncoder(w io.Writer, d *dict.Dict) *Encoder {
	return &Encoder{
		w:    bufio.NewWriterSize(w, 64<<10),
		d:    d,
		sent: make(map[dict.ID]struct{}),
	}
}

// Batches returns the number of batch frames written.
func (e *Encoder) Batches() int64 { return e.batches.Load() }

// Bytes returns the total bytes written, framing included.
func (e *Encoder) Bytes() int64 { return e.bytes.Load() }

// SentTerms returns the size of the connection's shipped-term set (the
// receiver's remap table mirrors it).
func (e *Encoder) SentTerms() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sent)
}

func (e *Encoder) putUvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *Encoder) putString(s string) {
	e.putUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// writeFrameLocked frames and flushes one payload; callers hold e.mu.
func (e *Encoder) writeFrameLocked(typ byte, payload []byte) error {
	if err := e.w.WriteByte(typ); err != nil {
		return err
	}
	n := binary.PutUvarint(e.tmp[:], uint64(len(payload)))
	if _, err := e.w.Write(e.tmp[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	e.bytes.Add(int64(1 + n + len(payload)))
	// Flush per frame: the receiver streams batches into a running join,
	// so latency matters more than syscall count (the bufio layer still
	// coalesces the header writes above).
	return e.w.Flush()
}

// Batch writes b as a batch frame for the given side. The batch's
// presence bitmaps are re-derived from the ID columns (Unbound == absent)
// so the wire image is self-consistent by construction.
func (e *Encoder) Batch(side byte, b *engine.ColBatch) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.buf = e.buf[:0]
	e.buf = append(e.buf, side)

	// Dictionary-delta sideband: IDs this connection has not shipped yet.
	fresh := e.fresh[:0]
	for _, col := range b.Cols {
		for r := 0; r < b.Len; r++ {
			id := col[r]
			if id == dict.Unbound {
				continue
			}
			if _, ok := e.sent[id]; !ok {
				e.sent[id] = struct{}{}
				fresh = append(fresh, id)
			}
		}
	}
	e.fresh = fresh[:0]
	e.putUvarint(uint64(len(fresh)))
	for _, id := range fresh {
		t := e.d.MustLookup(id)
		e.putUvarint(uint64(id))
		e.buf = append(e.buf, byte(t.Kind))
		e.putString(t.Value)
		e.putString(t.Datatype)
		e.putString(t.Lang)
	}

	e.putUvarint(uint64(b.Len))
	e.putUvarint(uint64(len(b.Cols)))
	for _, col := range b.Cols {
		var bb byte
		for r := 0; r < b.Len; r++ {
			if col[r] != dict.Unbound {
				bb |= 1 << (uint(r) & 7)
			}
			if r&7 == 7 {
				e.buf = append(e.buf, bb)
				bb = 0
			}
		}
		if b.Len&7 != 0 {
			e.buf = append(e.buf, bb)
		}
		for r := 0; r < b.Len; r++ {
			if id := col[r]; id != dict.Unbound {
				e.putUvarint(uint64(id))
			}
		}
	}
	if err := e.writeFrameLocked(frameBatch, e.buf); err != nil {
		return err
	}
	e.batches.Add(1)
	return nil
}

// Done signals end-of-stream for one side.
func (e *Encoder) Done(side byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(frameDone, []byte{side})
}

// Error aborts the task with a message for the peer.
func (e *Encoder) Error(msg string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(frameError, []byte(msg))
}

// Task writes the JSON task header opening a connection.
func (e *Encoder) Task(h *taskHeader) error { return e.jsonFrame(frameTask, h) }

// Hello writes a worker-status reply.
func (e *Encoder) Hello(info *WorkerInfo) error { return e.jsonFrame(frameHello, info) }

func (e *Encoder) jsonFrame(typ byte, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(typ, p)
}

// Frame is one decoded wire frame. Payload (for task/hello/error frames)
// is only valid until the next call to Next.
type Frame struct {
	Type    byte
	Side    byte
	Batch   *engine.ColBatch
	Payload []byte
}

// Decoder reads frames from a task connection, interning dictionary
// deltas into the local dictionary and remapping the sender's IDs into
// local ones as batches decode.
type Decoder struct {
	r       *bufio.Reader
	d       *dict.Dict
	remap   map[uint64]dict.ID
	schemas [3]*engine.Schema
	buf     []byte

	batches atomic.Int64
	bytes   atomic.Int64
	remapN  atomic.Int64
}

// NewDecoder returns a decoder reading from r, interning terms into d.
func NewDecoder(r io.Reader, d *dict.Dict) *Decoder {
	return &Decoder{
		r:     bufio.NewReaderSize(r, 64<<10),
		d:     d,
		remap: make(map[uint64]dict.ID),
	}
}

// SetSchema declares the column layout of one side's batches; decoding a
// batch for a side with no schema is a protocol error.
func (dec *Decoder) SetSchema(side byte, s *engine.Schema) { dec.schemas[side] = s }

// Batches returns the number of batch frames decoded.
func (dec *Decoder) Batches() int64 { return dec.batches.Load() }

// Bytes returns the total payload bytes read.
func (dec *Decoder) Bytes() int64 { return dec.bytes.Load() }

// RemapEntries returns the size of the sender-ID remap table.
func (dec *Decoder) RemapEntries() int64 { return dec.remapN.Load() }

// Next reads one frame. It returns io.EOF at a clean end of stream and an
// errCorrupt-tagged error on malformed input.
func (dec *Decoder) Next() (Frame, error) {
	typ, err := dec.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	n, err := binary.ReadUvarint(dec.r)
	if err != nil {
		return Frame{}, corrupt("bad frame length: %v", err)
	}
	if n > maxFramePayload {
		return Frame{}, corrupt("frame payload %d exceeds %d", n, maxFramePayload)
	}
	if uint64(cap(dec.buf)) < n {
		dec.buf = make([]byte, n)
	}
	dec.buf = dec.buf[:n]
	if _, err := io.ReadFull(dec.r, dec.buf); err != nil {
		return Frame{}, corrupt("truncated frame: %v", err)
	}
	dec.bytes.Add(int64(n) + 1)
	switch typ {
	case frameBatch:
		side, b, err := dec.decodeBatch(dec.buf)
		if err != nil {
			return Frame{}, err
		}
		dec.batches.Add(1)
		return Frame{Type: typ, Side: side, Batch: b}, nil
	case frameDone:
		if len(dec.buf) != 1 || dec.buf[0] > SideRight {
			return Frame{}, corrupt("bad done frame")
		}
		return Frame{Type: typ, Side: dec.buf[0]}, nil
	case frameTask, frameError, frameHello:
		return Frame{Type: typ, Payload: dec.buf}, nil
	default:
		return Frame{}, corrupt("unknown frame type 0x%02x", typ)
	}
}

// cursor walks a fully read payload with sticky error handling: every
// accessor after a failure returns zero values, and the caller checks err
// once at the end.
type cursor struct {
	p   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = corrupt(format, args...)
	}
}

func (c *cursor) byte() byte {
	if c.err != nil || c.off >= len(c.p) {
		c.fail("unexpected end of payload")
		return 0
	}
	b := c.p[c.off]
	c.off++
	return b
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail("bad uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.p) {
		c.fail("unexpected end of payload")
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

// str reads a uvarint-length-prefixed string. The conversion copies, so
// the result stays valid after the decoder reuses its payload buffer.
func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.p)-c.off) {
		c.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(c.bytes(int(n)))
}

func (dec *Decoder) decodeBatch(p []byte) (byte, *engine.ColBatch, error) {
	c := &cursor{p: p}
	side := c.byte()
	if side > SideRight {
		return 0, nil, corrupt("bad batch side %d", side)
	}

	ndelta := c.uvarint()
	if ndelta > uint64(len(p)) { // each delta record is several bytes
		return 0, nil, corrupt("delta count %d exceeds payload", ndelta)
	}
	for i := uint64(0); i < ndelta && c.err == nil; i++ {
		senderID := c.uvarint()
		kind := c.byte()
		if kind > uint8(rdf.TermBlank) {
			return 0, nil, corrupt("bad term kind %d", kind)
		}
		value := c.str()
		datatype := c.str()
		lang := c.str()
		if c.err != nil {
			break
		}
		if senderID == 0 {
			return 0, nil, corrupt("delta for reserved unbound ID")
		}
		dec.remap[senderID] = dec.d.Intern(rdf.Term{
			Kind:     rdf.TermKind(kind),
			Value:    value,
			Datatype: datatype,
			Lang:     lang,
		})
		dec.remapN.Add(1)
	}

	rows := c.uvarint()
	cols := c.uvarint()
	if c.err != nil {
		return 0, nil, c.err
	}
	if rows > maxWireRows {
		return 0, nil, corrupt("row count %d exceeds %d", rows, maxWireRows)
	}
	if cols > maxWireCols {
		return 0, nil, corrupt("column count %d exceeds %d", cols, maxWireCols)
	}
	schema := dec.schemas[side]
	if schema == nil {
		return 0, nil, corrupt("batch for side %d with no schema", side)
	}
	if int(cols) != len(schema.Vars) {
		return 0, nil, corrupt("batch has %d columns, schema %d", cols, len(schema.Vars))
	}

	b := &engine.ColBatch{
		Schema:  schema,
		Len:     int(rows),
		Cols:    make([][]dict.ID, cols),
		Present: make([][]uint64, cols),
	}
	words := (int(rows) + 63) / 64
	nb := (int(rows) + 7) / 8
	for ci := range b.Cols {
		col := make([]dict.ID, rows)
		pres := make([]uint64, words)
		bm := c.bytes(nb)
		if c.err != nil {
			return 0, nil, c.err
		}
		for r := 0; r < int(rows); r++ {
			if bm[r>>3]&(1<<(uint(r)&7)) == 0 {
				continue
			}
			senderID := c.uvarint()
			if c.err != nil {
				return 0, nil, c.err
			}
			local, ok := dec.remap[senderID]
			if !ok {
				return 0, nil, corrupt("ID %d has no dictionary delta", senderID)
			}
			col[r] = local
			pres[r>>6] |= 1 << (uint(r) & 63)
		}
		b.Cols[ci] = col
		b.Present[ci] = pres
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	if c.off != len(p) {
		return 0, nil, corrupt("%d trailing bytes after batch", len(p)-c.off)
	}
	return side, b, nil
}
