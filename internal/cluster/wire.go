// Package cluster distributes query execution across ontario-server
// processes. A coordinator parses, optimizes and caches plans exactly as
// a single node does, then executes leaf services, symmetric-hash joins
// and co-partitioned plan fragments against a pool of workers, each
// owning one hash-partition of the lake. Every coordinator keeps one
// persistent multiplexed connection per worker: frames carry a stream ID
// so concurrent tasks interleave on the link, and the dictionary-delta
// remap state is link-lifetime — each term's lexical form crosses a link
// once ever, after which only integer IDs flow. Intermediate results
// cross as binary columnar batches: varint-framed dict.ID columns plus
// presence bitmaps. The package also provides a router mode that spreads
// clients over N coordinator replicas with plan-cache affinity and a
// shared admission budget.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/rdf"
)

// Frame types of the shuffle wire protocol. Every frame on a link is a
// type byte, a uvarint stream ID, a uvarint payload length, and the
// payload. Stream 0 is the link-control stream (the hello handshake);
// task streams are client-allocated and never reused.
const (
	frameTask   = 0x01 // JSON task header; opens a stream
	frameBatch  = 0x02 // columnar batch: side byte + dict deltas + columns
	frameDone   = 0x03 // one side byte: no more batches for that side
	frameError  = 0x04 // UTF-8 error message; aborts the stream
	frameHello  = 0x05 // JSON worker status (link handshake + probe reply)
	frameCancel = 0x06 // empty payload: abort the stream's task
)

// Stream sides within a task. A scan or fragment task only carries
// SideOut (worker to coordinator); a join task's inputs arrive as
// SideLeft/SideRight and its results leave as SideOut.
const (
	SideOut   byte = 0
	SideLeft  byte = 1
	SideRight byte = 2
)

// Wire limits. The decoder rejects any frame crossing them before
// allocating, so a truncated or corrupt stream fails fast instead of
// ballooning memory.
const (
	maxFramePayload = 64 << 20
	maxWireRows     = 1 << 20
	maxWireCols     = 1 << 12
)

// errCorrupt tags every malformed-input failure so tests (and the fuzz
// harness) can distinguish rejection from a crash.
type errCorrupt struct{ msg string }

func (e errCorrupt) Error() string { return "cluster: corrupt frame: " + e.msg }

func corrupt(format string, args ...any) error {
	return errCorrupt{msg: fmt.Sprintf(format, args...)}
}

// wireBufPool recycles codec scratch buffers across links and frames, so
// steady-state encode/decode of the shuffle hot path stays allocation-
// flat no matter how many links come and go. The pool holds *[]byte (not
// []byte) so Get/Put themselves do not allocate.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

func getWireBuf(n int) *[]byte {
	bp := wireBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putWireBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	wireBufPool.Put(bp)
}

// Encoder writes frames to one end of a link. Terms cross the wire once
// per link: the first batch carrying a dictionary ID prepends a
// (senderID, term) delta record, and every later occurrence — on any
// stream of the link, for the link's whole lifetime — ships as the bare
// varint ID, resolved by the receiver's remap table. An Encoder is safe
// for concurrent use: all streams multiplexed on the link share it.
type Encoder struct {
	mu    sync.Mutex
	w     *bufio.Writer
	d     *dict.Dict
	sent  map[dict.ID]struct{}
	fresh []dict.ID
	tmp   [binary.MaxVarintLen64]byte

	batches     atomic.Int64
	bytes       atomic.Int64
	shufBatches atomic.Int64
	shufBytes   atomic.Int64
	deltaBytes  atomic.Int64
}

// NewEncoder returns an encoder over w resolving IDs through d.
func NewEncoder(w io.Writer, d *dict.Dict) *Encoder {
	return &Encoder{
		w:    bufio.NewWriterSize(w, 64<<10),
		d:    d,
		sent: make(map[dict.ID]struct{}),
	}
}

// Batches returns the number of batch frames written.
func (e *Encoder) Batches() int64 { return e.batches.Load() }

// Bytes returns the total bytes written, framing included.
func (e *Encoder) Bytes() int64 { return e.bytes.Load() }

// ShuffledBatches returns the batch frames written for a join-input side
// (SideLeft/SideRight) — true shuffle traffic, as opposed to results.
func (e *Encoder) ShuffledBatches() int64 { return e.shufBatches.Load() }

// ShuffledBytes returns the bytes written in join-input batch frames.
func (e *Encoder) ShuffledBytes() int64 { return e.shufBytes.Load() }

// DeltaBytes returns the bytes spent on dictionary-delta records (term
// lexical forms); amortized to ~once per term per link lifetime.
func (e *Encoder) DeltaBytes() int64 { return e.deltaBytes.Load() }

// SentTerms returns the size of the link's shipped-term set (the
// receiver's remap table mirrors it).
func (e *Encoder) SentTerms() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sent)
}

func putUvarint(buf []byte, tmp *[binary.MaxVarintLen64]byte, v uint64) []byte {
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func putString(buf []byte, tmp *[binary.MaxVarintLen64]byte, s string) []byte {
	buf = putUvarint(buf, tmp, uint64(len(s)))
	return append(buf, s...)
}

// writeFrameLocked frames and flushes one payload; callers hold e.mu.
func (e *Encoder) writeFrameLocked(typ byte, stream uint64, payload []byte) error {
	if err := e.w.WriteByte(typ); err != nil {
		return err
	}
	n := binary.PutUvarint(e.tmp[:], stream)
	if _, err := e.w.Write(e.tmp[:n]); err != nil {
		return err
	}
	total := 1 + n
	n = binary.PutUvarint(e.tmp[:], uint64(len(payload)))
	if _, err := e.w.Write(e.tmp[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	e.bytes.Add(int64(total + n + len(payload)))
	// Flush per frame: the receiver streams batches into a running join,
	// so latency matters more than syscall count (the bufio layer still
	// coalesces the header writes above).
	return e.w.Flush()
}

// Batch writes b as a batch frame for the given stream and side. The
// batch's presence bitmaps are re-derived from the ID columns
// (Unbound == absent) so the wire image is self-consistent by
// construction.
func (e *Encoder) Batch(stream uint64, side byte, b *engine.ColBatch) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	bp := getWireBuf(0)
	defer putWireBuf(bp)
	buf := *bp
	buf = append(buf, side)

	// Dictionary-delta sideband: IDs this link has not shipped yet.
	fresh := e.fresh[:0]
	for _, col := range b.Cols {
		for r := 0; r < b.Len; r++ {
			id := col[r]
			if id == dict.Unbound {
				continue
			}
			if _, ok := e.sent[id]; !ok {
				e.sent[id] = struct{}{}
				fresh = append(fresh, id)
			}
		}
	}
	e.fresh = fresh[:0]
	deltaStart := len(buf)
	buf = putUvarint(buf, &e.tmp, uint64(len(fresh)))
	for _, id := range fresh {
		t := e.d.MustLookup(id)
		buf = putUvarint(buf, &e.tmp, uint64(id))
		buf = append(buf, byte(t.Kind))
		buf = putString(buf, &e.tmp, t.Value)
		buf = putString(buf, &e.tmp, t.Datatype)
		buf = putString(buf, &e.tmp, t.Lang)
	}
	e.deltaBytes.Add(int64(len(buf) - deltaStart))

	buf = putUvarint(buf, &e.tmp, uint64(b.Len))
	buf = putUvarint(buf, &e.tmp, uint64(len(b.Cols)))
	for _, col := range b.Cols {
		var bb byte
		for r := 0; r < b.Len; r++ {
			if col[r] != dict.Unbound {
				bb |= 1 << (uint(r) & 7)
			}
			if r&7 == 7 {
				buf = append(buf, bb)
				bb = 0
			}
		}
		if b.Len&7 != 0 {
			buf = append(buf, bb)
		}
		for r := 0; r < b.Len; r++ {
			if id := col[r]; id != dict.Unbound {
				buf = putUvarint(buf, &e.tmp, uint64(id))
			}
		}
	}
	*bp = buf
	if err := e.writeFrameLocked(frameBatch, stream, buf); err != nil {
		return err
	}
	e.batches.Add(1)
	if side != SideOut {
		e.shufBatches.Add(1)
		e.shufBytes.Add(int64(len(buf)))
	}
	return nil
}

// Done signals end-of-stream for one side of a stream's task.
func (e *Encoder) Done(stream uint64, side byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(frameDone, stream, []byte{side})
}

// Error aborts the stream's task with a message for the peer.
func (e *Encoder) Error(stream uint64, msg string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(frameError, stream, []byte(msg))
}

// Cancel asks the peer to abort the stream's task.
func (e *Encoder) Cancel(stream uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(frameCancel, stream, nil)
}

// Task writes the JSON task header opening a stream.
func (e *Encoder) Task(stream uint64, h *taskHeader) error {
	return e.jsonFrame(frameTask, stream, h)
}

// Hello writes a worker-status frame (the link handshake on stream 0, or
// a probe reply on the probe's stream).
func (e *Encoder) Hello(stream uint64, info *WorkerInfo) error {
	return e.jsonFrame(frameHello, stream, info)
}

func (e *Encoder) jsonFrame(typ byte, stream uint64, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeFrameLocked(typ, stream, p)
}

// Frame is one decoded wire frame. Payload (for task/hello/error frames)
// is only valid until the next call to Next. A batch frame for a stream
// the schema lookup does not recognize decodes with a nil Batch: its
// dictionary deltas are interned (they are link state, not stream state)
// and the rows are dropped.
type Frame struct {
	Type    byte
	Stream  uint64
	Side    byte
	Batch   *engine.ColBatch
	Payload []byte
}

// SchemaLookup resolves the column layout of a stream side's batches;
// returning nil drops the batch (after its deltas intern).
type SchemaLookup func(stream uint64, side byte) *engine.Schema

// Decoder reads frames from a link, interning dictionary deltas into the
// local dictionary and remapping the sender's IDs into local ones as
// batches decode. The remap table is link-lifetime: it grows across
// every task multiplexed on the link and resets only when the link
// re-dials.
type Decoder struct {
	r      *bufio.Reader
	d      *dict.Dict
	remap  map[uint64]dict.ID
	lookup SchemaLookup
	buf    []byte

	batches     atomic.Int64
	bytes       atomic.Int64
	shufBatches atomic.Int64
	shufBytes   atomic.Int64
	deltaBytes  atomic.Int64
	remapN      atomic.Int64
}

// NewDecoder returns a decoder reading from r, interning terms into d.
func NewDecoder(r io.Reader, d *dict.Dict) *Decoder {
	return &Decoder{
		r:     bufio.NewReaderSize(r, 64<<10),
		d:     d,
		remap: make(map[uint64]dict.ID),
	}
}

// SetLookup installs the schema resolver consulted for every batch frame.
func (dec *Decoder) SetLookup(l SchemaLookup) { dec.lookup = l }

// Batches returns the number of batch frames decoded.
func (dec *Decoder) Batches() int64 { return dec.batches.Load() }

// Bytes returns the total payload bytes read.
func (dec *Decoder) Bytes() int64 { return dec.bytes.Load() }

// ShuffledBatches returns the join-input (SideLeft/SideRight) batch
// frames decoded.
func (dec *Decoder) ShuffledBatches() int64 { return dec.shufBatches.Load() }

// ShuffledBytes returns the bytes read in join-input batch frames.
func (dec *Decoder) ShuffledBytes() int64 { return dec.shufBytes.Load() }

// DeltaBytes returns the bytes read as dictionary-delta records.
func (dec *Decoder) DeltaBytes() int64 { return dec.deltaBytes.Load() }

// RemapEntries returns the current size of the link's sender-ID remap
// table (entries are never removed, so this is also the count of terms
// that crossed the link).
func (dec *Decoder) RemapEntries() int64 { return dec.remapN.Load() }

// Next reads one frame. It returns io.EOF at a clean end of stream and an
// errCorrupt-tagged error on malformed input.
func (dec *Decoder) Next() (Frame, error) {
	typ, err := dec.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	stream, err := binary.ReadUvarint(dec.r)
	if err != nil {
		return Frame{}, corrupt("bad stream ID: %v", err)
	}
	n, err := binary.ReadUvarint(dec.r)
	if err != nil {
		return Frame{}, corrupt("bad frame length: %v", err)
	}
	if n > maxFramePayload {
		return Frame{}, corrupt("frame payload %d exceeds %d", n, maxFramePayload)
	}
	switch typ {
	case frameBatch:
		// The hot path reads into a pooled buffer released before return;
		// the decoded batch owns its own memory.
		bp := getWireBuf(int(n))
		defer putWireBuf(bp)
		if _, err := io.ReadFull(dec.r, *bp); err != nil {
			return Frame{}, corrupt("truncated frame: %v", err)
		}
		dec.bytes.Add(int64(n) + 1)
		side, b, err := dec.decodeBatch(stream, *bp)
		if err != nil {
			return Frame{}, err
		}
		dec.batches.Add(1)
		if side != SideOut {
			dec.shufBatches.Add(1)
			dec.shufBytes.Add(int64(n))
		}
		return Frame{Type: typ, Stream: stream, Side: side, Batch: b}, nil
	case frameDone:
		if uint64(cap(dec.buf)) < n {
			dec.buf = make([]byte, n)
		}
		dec.buf = dec.buf[:n]
		if _, err := io.ReadFull(dec.r, dec.buf); err != nil {
			return Frame{}, corrupt("truncated frame: %v", err)
		}
		dec.bytes.Add(int64(n) + 1)
		if len(dec.buf) != 1 || dec.buf[0] > SideRight {
			return Frame{}, corrupt("bad done frame")
		}
		return Frame{Type: typ, Stream: stream, Side: dec.buf[0]}, nil
	case frameTask, frameError, frameHello, frameCancel:
		if uint64(cap(dec.buf)) < n {
			dec.buf = make([]byte, n)
		}
		dec.buf = dec.buf[:n]
		if _, err := io.ReadFull(dec.r, dec.buf); err != nil {
			return Frame{}, corrupt("truncated frame: %v", err)
		}
		dec.bytes.Add(int64(n) + 1)
		return Frame{Type: typ, Stream: stream, Payload: dec.buf}, nil
	default:
		return Frame{}, corrupt("unknown frame type 0x%02x", typ)
	}
}

// cursor walks a fully read payload with sticky error handling: every
// accessor after a failure returns zero values, and the caller checks err
// once at the end.
type cursor struct {
	p   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = corrupt(format, args...)
	}
}

func (c *cursor) byte() byte {
	if c.err != nil || c.off >= len(c.p) {
		c.fail("unexpected end of payload")
		return 0
	}
	b := c.p[c.off]
	c.off++
	return b
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail("bad uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.p) {
		c.fail("unexpected end of payload")
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

// str reads a uvarint-length-prefixed string. The conversion copies, so
// the result stays valid after the decoder reuses its payload buffer.
func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.p)-c.off) {
		c.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(c.bytes(int(n)))
}

func (dec *Decoder) decodeBatch(stream uint64, p []byte) (byte, *engine.ColBatch, error) {
	c := &cursor{p: p}
	side := c.byte()
	if side > SideRight {
		return 0, nil, corrupt("bad batch side %d", side)
	}

	ndelta := c.uvarint()
	if ndelta > uint64(len(p)) { // each delta record is several bytes
		return 0, nil, corrupt("delta count %d exceeds payload", ndelta)
	}
	deltaStart := c.off
	for i := uint64(0); i < ndelta && c.err == nil; i++ {
		senderID := c.uvarint()
		kind := c.byte()
		if kind > uint8(rdf.TermBlank) {
			return 0, nil, corrupt("bad term kind %d", kind)
		}
		value := c.str()
		datatype := c.str()
		lang := c.str()
		if c.err != nil {
			break
		}
		if senderID == 0 {
			return 0, nil, corrupt("delta for reserved unbound ID")
		}
		dec.remap[senderID] = dec.d.Intern(rdf.Term{
			Kind:     rdf.TermKind(kind),
			Value:    value,
			Datatype: datatype,
			Lang:     lang,
		})
		dec.remapN.Add(1)
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	dec.deltaBytes.Add(int64(c.off - deltaStart))

	var schema *engine.Schema
	if dec.lookup != nil {
		schema = dec.lookup(stream, side)
	}
	if schema == nil {
		// Stream closed or never opened: the deltas above are link state
		// and had to intern, but the rows belong to nobody — drop them
		// without validating the remainder.
		return side, nil, nil
	}

	rows := c.uvarint()
	cols := c.uvarint()
	if c.err != nil {
		return 0, nil, c.err
	}
	if rows > maxWireRows {
		return 0, nil, corrupt("row count %d exceeds %d", rows, maxWireRows)
	}
	if cols > maxWireCols {
		return 0, nil, corrupt("column count %d exceeds %d", cols, maxWireCols)
	}
	if int(cols) != len(schema.Vars) {
		return 0, nil, corrupt("batch has %d columns, schema %d", cols, len(schema.Vars))
	}

	b := &engine.ColBatch{
		Schema:  schema,
		Len:     int(rows),
		Cols:    make([][]dict.ID, cols),
		Present: make([][]uint64, cols),
	}
	words := (int(rows) + 63) / 64
	nb := (int(rows) + 7) / 8
	for ci := range b.Cols {
		col := make([]dict.ID, rows)
		pres := make([]uint64, words)
		bm := c.bytes(nb)
		if c.err != nil {
			return 0, nil, c.err
		}
		for r := 0; r < int(rows); r++ {
			if bm[r>>3]&(1<<(uint(r)&7)) == 0 {
				continue
			}
			senderID := c.uvarint()
			if c.err != nil {
				return 0, nil, c.err
			}
			local, ok := dec.remap[senderID]
			if !ok {
				return 0, nil, corrupt("ID %d has no dictionary delta", senderID)
			}
			col[r] = local
			pres[r>>6] |= 1 << (uint(r) & 63)
		}
		b.Cols[ci] = col
		b.Present[ci] = pres
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	if c.off != len(p) {
		return 0, nil, corrupt("%d trailing bytes after batch", len(p)-c.off)
	}
	return side, b, nil
}

// frameQ is an unbounded FIFO handing decoded frames from a link's demux
// loop to the stream's consumer. It is unbounded by design: the demux
// loop must never block on one slow stream (that would stall every other
// stream multiplexed on the link), so memory for a backlogged stream
// grows until its consumer drains or abandons it. Closing the queue
// makes later pushes silent drops — an abandoned stream can never wedge
// the link.
type frameQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []Frame
	head   int
	err    error
	closed bool
}

func newFrameQ() *frameQ {
	q := &frameQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a frame; frames pushed after close are dropped.
func (q *frameQ) push(f Frame) {
	q.mu.Lock()
	if !q.closed {
		q.frames = append(q.frames, f)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// close ends the queue with err (nil for a clean end); idempotent, first
// error wins.
func (q *frameQ) close(err error) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.err = err
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// pop blocks for the next frame; ok is false once the queue is closed and
// drained, with the close error in err.
func (q *frameQ) pop() (f Frame, err error, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.head < len(q.frames) {
			f = q.frames[q.head]
			q.frames[q.head] = Frame{}
			q.head++
			if q.head == len(q.frames) {
				q.frames = q.frames[:0]
				q.head = 0
			}
			return f, nil, true
		}
		if q.closed {
			return Frame{}, q.err, false
		}
		q.cond.Wait()
	}
}
