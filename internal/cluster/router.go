package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ontario/internal/server"
)

// RouterConfig configures a replica router.
type RouterConfig struct {
	// Replicas are the coordinator/single-node base URLs to spread
	// queries over.
	Replicas []string
	// Budget is the shared admission budget: the number of queries in
	// flight across ALL replicas before the router answers 503. The
	// replicas' own admission control still applies per node; the shared
	// budget keeps a burst from saturating every replica's queue at
	// once. 0 means 4x replicas x 16.
	Budget int
	// RetryAfter is the hint sent with 503 responses. 0 means 1s.
	RetryAfter time.Duration
}

// Router spreads SPARQL clients over N replicas with plan-cache
// affinity: each query routes to the replica that rendezvous-hashing
// (highest random weight) assigns its normalized text, so a repeated
// query always lands where its plan — and the wrapper responses keyed to
// that plan — are already cached. Non-query endpoints proxy to the first
// replica; /healthz aggregates all of them.
type Router struct {
	replicas   []*url.URL
	budget     chan struct{}
	retryAfter time.Duration
	client     *http.Client

	inflight atomic.Int64
	rejected atomic.Int64
	routed   []atomic.Int64
}

// NewRouter returns a router over the replica base URLs.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: NewRouter needs at least one replica")
	}
	urls := make([]*url.URL, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		// A bare host:port fails url.Parse (the port reads as an opaque
		// path segment), so give scheme-less replicas http:// up front.
		if !strings.Contains(r, "://") {
			r = "http://" + r
		}
		u, err := url.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %q: %w", r, err)
		}
		urls[i] = u
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 64 * len(urls)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Router{
		replicas:   urls,
		budget:     make(chan struct{}, cfg.Budget),
		retryAfter: cfg.RetryAfter,
		client:     &http.Client{}, // no timeout: responses stream
		routed:     make([]atomic.Int64, len(urls)),
	}, nil
}

// pick rendezvous-hashes the normalized query text over the replicas.
func (rt *Router) pick(normalized string) int {
	best, bestW := 0, uint64(0)
	for i := range rt.replicas {
		h := fnv.New64a()
		h.Write([]byte(normalized))
		h.Write([]byte{0})
		h.Write([]byte(strconv.Itoa(i)))
		if w := h.Sum64(); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/sparql":
		rt.serveQuery(w, r)
	case r.URL.Path == "/healthz":
		rt.serveHealthz(w, r)
	default:
		rt.proxy(w, r, 0, nil)
	}
}

// queryFromRequest extracts the SPARQL query for affinity hashing,
// returning the (possibly re-read) body for forwarding.
func queryFromRequest(r *http.Request) (string, []byte, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", nil, fmt.Errorf("missing query parameter")
		}
		return q, nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", nil, err
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == "application/x-www-form-urlencoded" {
		form, err := url.ParseQuery(string(body))
		if err != nil {
			return "", nil, err
		}
		q := form.Get("query")
		if q == "" {
			return "", nil, fmt.Errorf("missing query form parameter")
		}
		return q, body, nil
	}
	if len(body) == 0 {
		return "", nil, fmt.Errorf("empty request body")
	}
	return string(body), body, nil
}

func (rt *Router) serveQuery(w http.ResponseWriter, r *http.Request) {
	q, body, err := queryFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case rt.budget <- struct{}{}:
		defer func() { <-rt.budget }()
	default:
		rt.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((rt.retryAfter+time.Second-1)/time.Second)))
		http.Error(w, "router admission budget exhausted", http.StatusServiceUnavailable)
		return
	}
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	idx := rt.pick(server.NormalizeQuery(q))
	rt.routed[idx].Add(1)
	rt.proxy(w, r, idx, body)
}

// proxy forwards the request to replica idx, streaming the response
// through unchanged. body, when non-nil, replaces the already-consumed
// request body.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, idx int, body []byte) {
	target := *rt.replicas[idx]
	target.Path = r.URL.Path
	target.RawQuery = r.URL.RawQuery
	var rd io.Reader = r.Body
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), rd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := rt.client.Do(req)
	if err != nil {
		http.Error(w, "replica unavailable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// serveHealthz aggregates every replica's /healthz into one document:
// status "ok" only when every replica answers ok.
func (rt *Router) serveHealthz(w http.ResponseWriter, r *http.Request) {
	type replicaHealth struct {
		URL    string          `json:"url"`
		Status string          `json:"status"`
		Doc    json.RawMessage `json:"doc,omitempty"`
	}
	out := struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Inflight int64           `json:"inflight"`
		Rejected int64           `json:"rejected"`
		Routed   []int64         `json:"routed"`
		Replicas []replicaHealth `json:"replicas"`
	}{
		Status:   "ok",
		Role:     "router",
		Inflight: rt.inflight.Load(),
		Rejected: rt.rejected.Load(),
		Replicas: make([]replicaHealth, len(rt.replicas)),
	}
	for i := range rt.routed {
		out.Routed = append(out.Routed, rt.routed[i].Load())
	}
	var wg sync.WaitGroup
	for i, u := range rt.replicas {
		wg.Add(1)
		go func(i int, base url.URL) {
			defer wg.Done()
			base.Path = "/healthz"
			rh := replicaHealth{URL: base.String(), Status: "down"}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base.String(), nil)
			if err == nil {
				if resp, err := rt.client.Do(req); err == nil {
					body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						rh.Status = "ok"
						rh.Doc = json.RawMessage(body)
					}
				}
			}
			out.Replicas[i] = rh
		}(i, *u)
	}
	wg.Wait()
	for _, rh := range out.Replicas {
		if rh.Status != "ok" {
			out.Status = "degraded"
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
