package ontario

import (
	"context"
	"time"

	"ontario/internal/bridge"
	"ontario/internal/core"
	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// Stats summarizes one query execution. While the cursor is open the
// counters reflect the work done so far; once the results are exhausted or
// closed they are final.
type Stats struct {
	// Answers is the number of solutions delivered through the cursor.
	Answers int
	// Messages is the number of simulated network messages retrieved.
	Messages int
	// SimulatedDelay is the total sampled network latency.
	SimulatedDelay time.Duration
	// Duration is the wall-clock execution time.
	Duration time.Duration
	// TimeToFirstAnswer is the arrival time of the first solution
	// (Duration when the query produced none).
	TimeToFirstAnswer time.Duration
	// SourceMessages is the simulated message count per contacted source.
	SourceMessages map[string]int
	// SourceDelays is the sampled network latency per contacted source.
	SourceDelays map[string]time.Duration
}

// Results is a cursor over a query's solutions, in the style of
// database/sql.Rows: solutions stream from the executor as they are
// produced, so the first Next returns at time-to-first-answer, not at
// query completion.
//
//	res, err := eng.Query(ctx, text, ontario.WithAwarePlan())
//	if err != nil { ... }
//	defer res.Close()
//	for res.Next() {
//	    b := res.Binding()
//	    ...
//	}
//	if err := res.Err(); err != nil { ... }
//
// A Results is not safe for concurrent use. Closing it early cancels the
// underlying execution and releases its resources.
type Results struct {
	vars    []string
	plan    *core.Plan
	summary *PlanSummary

	ctx    context.Context
	cancel context.CancelFunc
	exec   *core.Execution
	stream *engine.Stream
	start  time.Time

	// Columnar mode (the default): the cursor consumes dictionary-encoded
	// batches and materializes terms only when a solution is actually
	// served — through Binding, or pre-encoded JSON via nextBatchJSON.
	// stream is nil in this mode; cstream/dict are nil in row mode.
	cstream *engine.CStream
	dict    *dict.Dict
	cbuf    *engine.ColBatch
	cidx    int

	// json holds the lazily-built JSON encoding state (pre-marshaled
	// keys, term cache) backing the server's fast path; jsonCache is the
	// engine's cross-query term cache it draws from.
	json      *resultsJSON
	jsonCache *termJSONCache

	// buf is the exchange batch the cursor is currently iterating: Next
	// serves bindings from buf[idx:] and only touches the stream channel
	// when the batch is exhausted, so the per-answer cost of the cursor is
	// a slice index, not a channel receive.
	buf []sparql.Binding
	idx int

	cur     Binding
	err     error
	n       int
	firstAt time.Duration
	total   time.Duration
	done    bool
	closed  bool
}

func newResults(ctx context.Context, cancel context.CancelFunc, plan *core.Plan, exec *core.Execution, stream *engine.Stream, start time.Time) *Results {
	return &Results{
		vars:   plan.Query.ProjectedVars(),
		plan:   plan,
		ctx:    ctx,
		cancel: cancel,
		exec:   exec,
		stream: stream,
		start:  start,
	}
}

func newColumnarResults(ctx context.Context, cancel context.CancelFunc, plan *core.Plan, exec *core.Execution, cs *engine.CStream, d *dict.Dict, start time.Time) *Results {
	return &Results{
		vars:    plan.Query.ProjectedVars(),
		plan:    plan,
		ctx:     ctx,
		cancel:  cancel,
		exec:    exec,
		cstream: cs,
		dict:    d,
		start:   start,
	}
}

// Vars returns the projected variable names.
func (r *Results) Vars() []string { return append([]string(nil), r.vars...) }

// Next advances to the next solution. It returns false when the results
// are exhausted, the context is cancelled, or the cursor was closed; check
// Err afterwards to distinguish completion from cancellation.
func (r *Results) Next() bool {
	if !r.fill() {
		return false
	}
	var b sparql.Binding
	if r.cstream != nil {
		b = r.cbuf.Binding(r.cidx, r.dict)
		r.cidx++
	} else {
		b = r.buf[r.idx]
		r.idx++
	}
	r.n++
	if r.n == 1 {
		r.firstAt = time.Since(r.start)
	}
	r.cur = bindingFromInternal(b)
	return true
}

// nextBatch returns the rest of the buffered batch — or pulls the next one
// — converted to public bindings. It backs the internal server's
// batch-per-write JSON encoder through internal/bridge, keeping the
// exported cursor API unchanged.
func (r *Results) nextBatch() ([]Binding, bool) {
	if !r.fill() {
		return nil, false
	}
	var out []Binding
	if r.cstream != nil {
		out = make([]Binding, 0, r.cbuf.Len-r.cidx)
		for ; r.cidx < r.cbuf.Len; r.cidx++ {
			out = append(out, bindingFromInternal(r.cbuf.Binding(r.cidx, r.dict)))
		}
	} else {
		part := r.buf[r.idx:]
		r.idx = len(r.buf)
		out = make([]Binding, len(part))
		for i, b := range part {
			out[i] = bindingFromInternal(b)
		}
	}
	if r.n == 0 {
		r.firstAt = time.Since(r.start)
	}
	r.n += len(out)
	return out, true
}

// fill ensures the cursor's buffered batch holds an unserved solution,
// pulling the next exchange batch when the buffer is exhausted; it
// returns false — recording the terminal state — once the cursor is
// done, closed, or the stream has ended.
func (r *Results) fill() bool {
	if r.done || r.closed {
		return false
	}
	if r.cstream != nil {
		for r.cbuf == nil || r.cidx >= r.cbuf.Len {
			batch, ok := <-r.cstream.Batches()
			if !ok {
				r.finish()
				return false
			}
			r.cbuf, r.cidx = batch, 0
		}
		return true
	}
	for r.idx >= len(r.buf) {
		batch, ok := <-r.stream.Batches()
		if !ok {
			r.finish()
			return false
		}
		r.buf, r.idx = batch, 0
	}
	return true
}

// Binding returns the current solution. It is only valid after a true
// Next.
func (r *Results) Binding() Binding { return r.cur }

// Err returns the error that terminated iteration early (a cancelled or
// expired context), or nil after a complete run or an explicit Close.
func (r *Results) Err() error { return r.err }

// Close cancels the execution if it is still running, drains it, and
// releases its resources. Closing an exhausted or already-closed cursor is
// a no-op.
func (r *Results) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.cancel()
	if r.json != nil {
		r.json.release()
	}
	if r.cstream != nil {
		for range r.cstream.Batches() {
		}
	} else {
		for range r.stream.Batches() {
		}
	}
	if !r.done {
		r.done = true
		r.total = time.Since(r.start)
	}
	return r.err
}

// finish records the terminal state once the stream closes. A failure
// parked by the execution (a remote source that died mid-query) takes
// precedence over plain context cancellation: the caller sees why the
// stream ended short, not just that it did.
func (r *Results) finish() {
	r.done = true
	r.total = time.Since(r.start)
	if err := r.exec.Err(); err != nil {
		r.err = err
	} else if err := r.ctx.Err(); err != nil {
		r.err = err
	}
	r.cancel()
}

// Collect drains the remaining solutions, closes the cursor and returns
// them (all solutions when called before the first Next).
func (r *Results) Collect() ([]Binding, error) {
	var out []Binding
	for r.Next() {
		out = append(out, r.Binding())
	}
	r.Close()
	return out, r.err
}

// Stats returns the execution statistics: a snapshot while the cursor is
// open, the final numbers once it is exhausted or closed.
func (r *Results) Stats() Stats {
	d := r.total
	if !r.done {
		d = time.Since(r.start)
	}
	ttfa := r.firstAt
	if r.n == 0 {
		ttfa = d
	}
	return Stats{
		Answers:           r.n,
		Messages:          r.exec.Messages(),
		SimulatedDelay:    r.exec.SimulatedDelay(),
		Duration:          d,
		TimeToFirstAnswer: ttfa,
		SourceMessages:    r.exec.SourceMessages(),
		SourceDelays:      r.exec.SourceDelays(),
	}
}

// Plan returns the executed plan as a public summary tree.
func (r *Results) Plan() *PlanSummary {
	if r.summary == nil {
		r.summary = summarize(r.plan.Root)
	}
	return r.summary
}

func bindingFromInternal(b sparql.Binding) Binding {
	out := make(Binding, len(b))
	for v, t := range b {
		out[v] = Term{Kind: TermKind(t.Kind), Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
	return out
}

func init() {
	// Hand the internal server batch-granular access to the cursor without
	// widening the exported Results API (see internal/bridge).
	bridge.ResultsNextBatch = func(results any) (any, bool) {
		r, ok := results.(*Results)
		if !ok {
			return nil, false
		}
		batch, ok := r.nextBatch()
		if !ok {
			return nil, false
		}
		return batch, true
	}
	// The server's fast path: the cursor hands over the next batch already
	// encoded as sparql-results+json binding objects, skipping the public
	// Binding materialization entirely. In columnar mode each distinct term
	// is marshaled once per engine (the encoding is cached by dictionary
	// ID across queries), so the JSON writer's per-answer cost collapses
	// to cache lookups and byte appends.
	bridge.ResultsNextJSON = func(results any) ([]byte, int, bool) {
		r, ok := results.(*Results)
		if !ok {
			return nil, 0, false
		}
		return r.nextBatchJSON()
	}
	// Equivalence tests and the bench harness flip one execution back to
	// the row-at-a-time reference pipeline through this internal option.
	bridge.RowExchangeOption = Option(func(c *config) { c.rowExchange = true })
	// The cluster coordinator attaches its worker-pool distributor to a
	// query execution through this internal option factory.
	bridge.ClusterOption = func(dist any) any {
		d, _ := dist.(core.Distributor)
		return Option(func(c *config) { c.cluster = d })
	}
}
